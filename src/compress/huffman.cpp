#include "compress/huffman.hpp"

#include <algorithm>
#include <numeric>
#include <queue>

#include "common/simd.hpp"

namespace lck {

std::vector<std::uint64_t> count_frequencies(
    std::span<const std::uint32_t> symbols, std::size_t alphabet) {
  // Eight interleaved partial histograms via the dispatched kernel table:
  // consecutive symbols update different counter arrays, so equal
  // neighbouring symbols (the common case in quantization-code streams) no
  // longer chain through the same memory location. Merged at the end
  // (integer sums are order-independent, so every backend returns identical
  // counts; the merge loop auto-vectorizes under the active ISA's flags).
  const auto& o = simd::ops();
  std::vector<std::uint64_t> part(8 * alphabet, 0);
  o.hist8(symbols.data(), symbols.size(), part.data(), alphabet);
  std::vector<std::uint64_t> freq(alphabet, 0);
  o.hist8_merge(part.data(), alphabet, freq.data());
  return freq;
}

namespace {

/// One pass of Huffman tree construction; returns code lengths (possibly
/// exceeding kHuffmanMaxBits for extreme distributions).
std::vector<std::uint8_t> build_lengths_once(
    std::span<const std::uint64_t> freqs) {
  const std::size_t n = freqs.size();
  struct Node {
    std::uint64_t freq;
    std::int32_t left, right;  // -1 for leaves
    std::uint32_t symbol;
  };
  std::vector<Node> nodes;
  nodes.reserve(2 * n);
  using Entry = std::pair<std::uint64_t, std::uint32_t>;  // (freq, node idx)
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;

  for (std::size_t s = 0; s < n; ++s) {
    if (freqs[s] == 0) continue;
    nodes.push_back({freqs[s], -1, -1, static_cast<std::uint32_t>(s)});
    heap.emplace(freqs[s], static_cast<std::uint32_t>(nodes.size() - 1));
  }

  std::vector<std::uint8_t> lengths(n, 0);
  if (nodes.empty()) return lengths;
  if (nodes.size() == 1) {
    lengths[nodes[0].symbol] = 1;  // degenerate alphabet: 1-bit code
    return lengths;
  }

  while (heap.size() > 1) {
    const auto [fa, a] = heap.top();
    heap.pop();
    const auto [fb, b] = heap.top();
    heap.pop();
    nodes.push_back({fa + fb, static_cast<std::int32_t>(a),
                     static_cast<std::int32_t>(b), 0});
    heap.emplace(fa + fb, static_cast<std::uint32_t>(nodes.size() - 1));
  }

  // Depth-first traversal assigning depths as code lengths.
  struct Frame {
    std::uint32_t node;
    std::uint8_t depth;
  };
  std::vector<Frame> stack{{static_cast<std::uint32_t>(nodes.size() - 1), 0}};
  while (!stack.empty()) {
    const auto [idx, depth] = stack.back();
    stack.pop_back();
    const Node& nd = nodes[idx];
    if (nd.left < 0) {
      lengths[nd.symbol] = std::max<std::uint8_t>(depth, 1);
    } else {
      stack.push_back({static_cast<std::uint32_t>(nd.left),
                       static_cast<std::uint8_t>(depth + 1)});
      stack.push_back({static_cast<std::uint32_t>(nd.right),
                       static_cast<std::uint8_t>(depth + 1)});
    }
  }
  return lengths;
}

}  // namespace

std::vector<std::uint8_t> huffman_code_lengths(
    std::span<const std::uint64_t> freqs) {
  std::vector<std::uint64_t> f(freqs.begin(), freqs.end());
  for (int attempt = 0; attempt < 64; ++attempt) {
    auto lengths = build_lengths_once(f);
    const auto max_len =
        *std::max_element(lengths.begin(), lengths.end());
    if (max_len <= kHuffmanMaxBits) return lengths;
    // Flatten the distribution and retry: halving frequencies (keeping them
    // nonzero) reduces the maximum depth geometrically.
    for (auto& x : f)
      if (x > 0) x = (x + 1) / 2;
  }
  throw corrupt_stream_error("huffman: failed to limit code length");
}

HuffmanEncoder::HuffmanEncoder(std::span<const std::uint8_t> lengths)
    : codes_(lengths.size(), 0), lengths_(lengths.begin(), lengths.end()) {
  // Canonical code assignment: count codes per length, then first-code rule.
  std::vector<std::uint32_t> count(kHuffmanMaxBits + 1, 0);
  for (const auto l : lengths_) ++count[l];
  count[0] = 0;
  std::vector<std::uint32_t> next(kHuffmanMaxBits + 2, 0);
  std::uint32_t code = 0;
  for (unsigned len = 1; len <= kHuffmanMaxBits; ++len) {
    code = (code + count[len - 1]) << 1;
    next[len] = code;
  }
  for (std::size_t s = 0; s < lengths_.size(); ++s)
    if (lengths_[s] != 0) codes_[s] = next[lengths_[s]]++;
}

HuffmanDecoder::HuffmanDecoder(std::span<const std::uint8_t> lengths) {
  for (const auto l : lengths)
    max_len_ = std::max<unsigned>(max_len_, l);
  if (max_len_ > kHuffmanMaxBits)
    throw corrupt_stream_error("huffman: code length exceeds limit");
  groups_.resize(max_len_ + 1);

  // Sort symbols by (length, symbol) — canonical order.
  for (unsigned len = 1; len <= max_len_; ++len) {
    groups_[len].first_index = static_cast<std::uint32_t>(symbols_.size());
    for (std::size_t s = 0; s < lengths.size(); ++s)
      if (lengths[s] == len) {
        symbols_.push_back(static_cast<std::uint32_t>(s));
        ++groups_[len].count;
      }
  }
  std::uint32_t code = 0;
  std::uint32_t prev_count = 0;
  for (unsigned len = 1; len <= max_len_; ++len) {
    code = (code + prev_count) << 1;
    groups_[len].first_code = code;
    prev_count = groups_[len].count;
  }
}

std::uint32_t HuffmanDecoder::decode(BitReader& br) const {
  std::uint32_t code = 0;
  for (unsigned len = 1; len <= max_len_; ++len) {
    code = (code << 1) | br.read_bit();
    const LengthGroup& g = groups_[len];
    if (g.count != 0 && code < g.first_code + g.count && code >= g.first_code)
      return symbols_[g.first_index + (code - g.first_code)];
  }
  throw corrupt_stream_error("huffman: invalid code");
}

void write_code_lengths(ByteWriter& out, std::span<const std::uint8_t> lengths) {
  // Encoding: sequence of tokens. 0x00 LL LL = run of zeros (u16 count);
  // otherwise the byte is the length itself (1..kHuffmanMaxBits).
  out.put(static_cast<std::uint32_t>(lengths.size()));
  std::size_t i = 0;
  while (i < lengths.size()) {
    if (lengths[i] == 0) {
      std::size_t run = 0;
      while (i + run < lengths.size() && lengths[i + run] == 0 && run < 0xffff)
        ++run;
      out.put(static_cast<std::uint8_t>(0));
      out.put(static_cast<std::uint16_t>(run));
      i += run;
    } else {
      out.put(lengths[i]);
      ++i;
    }
  }
}

std::vector<std::uint8_t> read_code_lengths(ByteReader& in,
                                            std::size_t alphabet) {
  const auto n = in.get<std::uint32_t>();
  if (n != alphabet)
    throw corrupt_stream_error("huffman: alphabet size mismatch");
  std::vector<std::uint8_t> lengths(n, 0);
  std::size_t i = 0;
  while (i < n) {
    const auto b = in.get<std::uint8_t>();
    if (b == 0) {
      const auto run = in.get<std::uint16_t>();
      if (i + run > n) throw corrupt_stream_error("huffman: zero run overflow");
      i += run;
    } else {
      if (b > kHuffmanMaxBits)
        throw corrupt_stream_error("huffman: stored length too large");
      lengths[i++] = b;
    }
  }
  return lengths;
}

}  // namespace lck

#pragma once
/// \file huffman.hpp
/// \brief Canonical Huffman coding over a generic symbol alphabet.
///
/// Shared by the SZ-like compressor (quantization codes) and the
/// deflate-like lossless compressor (literal/length and distance alphabets).
/// Codes are canonical so only the code-length array is serialized.

#include <cstdint>
#include <span>
#include <vector>

#include "common/bit_io.hpp"
#include "common/byte_buffer.hpp"
#include "common/types.hpp"

namespace lck {

/// Maximum permitted code length; longer optimal codes are flattened by
/// iterative frequency scaling (rare, only for extreme skew).
inline constexpr unsigned kHuffmanMaxBits = 24;

/// Compute optimal prefix-code lengths for `freqs` (0 frequency ⇒ length 0).
/// Guarantees all lengths ≤ kHuffmanMaxBits.
[[nodiscard]] std::vector<std::uint8_t> huffman_code_lengths(
    std::span<const std::uint64_t> freqs);

/// Symbol-frequency histogram over `symbols` (each must be < `alphabet`).
/// Internally accumulates four interleaved partial histograms so the counter
/// increments form independent dependency chains (the single loop-carried
/// `++freq[c]` serializes on store-to-load forwarding for skewed symbol
/// streams), then merges them. Integer addition is associative, so the
/// result is identical to the naive loop.
[[nodiscard]] std::vector<std::uint64_t> count_frequencies(
    std::span<const std::uint32_t> symbols, std::size_t alphabet);

/// Canonical Huffman encoder built from code lengths.
class HuffmanEncoder {
 public:
  explicit HuffmanEncoder(std::span<const std::uint8_t> lengths);

  void encode(BitWriter& bw, std::uint32_t symbol) const {
    bw.write_bits(codes_[symbol], lengths_[symbol]);
  }

  [[nodiscard]] unsigned length_of(std::uint32_t symbol) const {
    return lengths_[symbol];
  }

 private:
  std::vector<std::uint32_t> codes_;
  std::vector<std::uint8_t> lengths_;
};

/// Canonical Huffman decoder built from the same code lengths.
class HuffmanDecoder {
 public:
  explicit HuffmanDecoder(std::span<const std::uint8_t> lengths);

  [[nodiscard]] std::uint32_t decode(BitReader& br) const;

 private:
  // Per length L: first canonical code value and index into sorted symbols.
  struct LengthGroup {
    std::uint32_t first_code = 0;
    std::uint32_t first_index = 0;
    std::uint32_t count = 0;
  };
  std::vector<LengthGroup> groups_;   // index = code length
  std::vector<std::uint32_t> symbols_;  // sorted by (length, symbol)
  unsigned max_len_ = 0;
};

/// Serialize a code-length array compactly (RLE of zeros + 5-bit lengths).
void write_code_lengths(ByteWriter& out, std::span<const std::uint8_t> lengths);

/// Inverse of write_code_lengths; `alphabet` is the expected array size.
[[nodiscard]] std::vector<std::uint8_t> read_code_lengths(ByteReader& in,
                                                          std::size_t alphabet);

}  // namespace lck

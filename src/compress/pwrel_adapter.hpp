#pragma once
/// \file pwrel_adapter.hpp
/// \brief Decorator that gives any absolute-error-bounded lossy compressor
///        the paper's pointwise-relative semantics |x_i−x'_i| ≤ eb·|x_i|.
///
/// Implementation: a log₂ transform with exact sign/zero bitmaps, compressing
/// log₂|x_i| under the absolute bound log₂(1+0.999·eb) with the wrapped
/// compressor. Zeros, subnormals and non-finite values are stored verbatim.

#include <memory>

#include "compress/compressor.hpp"

namespace lck {

class PointwiseRelativeAdapter final : public LossyCompressor {
 public:
  /// `inner` must support ErrorBound::Mode::kAbsolute.
  PointwiseRelativeAdapter(std::unique_ptr<LossyCompressor> inner, double eb)
      : LossyCompressor(ErrorBound::pointwise_rel(eb)),
        inner_(std::move(inner)) {
    require(inner_ != nullptr, "pwrel adapter: null inner compressor");
  }

  [[nodiscard]] std::string name() const override {
    return "pwrel+" + inner_->name();
  }

  [[nodiscard]] std::vector<byte_t> compress(
      std::span<const double> data) const override;

  void decompress(std::span<const byte_t> stream,
                  std::span<double> out) const override;

 private:
  std::unique_ptr<LossyCompressor> inner_;
};

}  // namespace lck

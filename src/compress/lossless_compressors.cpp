#include "compress/lossless_compressors.hpp"

#include <cstring>

#include "common/byte_buffer.hpp"
#include "compress/lossless/byte_codecs.hpp"
#include "compress/lossless/deflate_like.hpp"
#include "compress/lossless/lz4_like.hpp"

namespace lck {
namespace {

std::span<const byte_t> as_bytes(std::span<const double> data) {
  return {reinterpret_cast<const byte_t*>(data.data()),
          data.size() * sizeof(double)};
}

void bytes_to_doubles(std::span<const byte_t> bytes, std::span<double> out) {
  if (bytes.size() != out.size() * sizeof(double))
    throw corrupt_stream_error("lossless: byte count mismatch");
  if (!bytes.empty()) std::memcpy(out.data(), bytes.data(), bytes.size());
}

constexpr std::uint32_t kMagicRle = 0x31454c52u;      // "RLE1"
constexpr std::uint32_t kMagicDeflate = 0x31464544u;  // "DEF1"
constexpr std::uint32_t kMagicShufRle = 0x31525353u;  // "SSR1"
constexpr std::uint32_t kMagicLz4 = 0x315a344cu;      // "L4Z1"

}  // namespace

std::vector<byte_t> RleCompressor::compress(
    std::span<const double> data) const {
  ByteWriter out;
  out.put(kMagicRle);
  out.put(static_cast<std::uint64_t>(data.size()));
  const auto enc = rle_encode(as_bytes(data));
  out.put(static_cast<std::uint64_t>(enc.size()));
  out.put_bytes(enc);
  return std::move(out).take();
}

void RleCompressor::decompress(std::span<const byte_t> stream,
                               std::span<double> out) const {
  ByteReader in(stream);
  if (in.get<std::uint32_t>() != kMagicRle)
    throw corrupt_stream_error("rle: bad magic");
  const auto n = in.get<std::uint64_t>();
  if (n != out.size()) throw corrupt_stream_error("rle: size mismatch");
  const auto enc_size = in.get<std::uint64_t>();
  const auto decoded =
      rle_decode(in.get_bytes(enc_size), n * sizeof(double));
  bytes_to_doubles(decoded, out);
}

std::vector<byte_t> DeflateCompressor::compress(
    std::span<const double> data) const {
  ByteWriter out;
  out.put(kMagicDeflate);
  out.put(static_cast<std::uint64_t>(data.size()));
  out.put(static_cast<std::uint8_t>(shuffle_ ? 1 : 0));
  std::vector<byte_t> staged;
  std::span<const byte_t> input = as_bytes(data);
  if (shuffle_) {
    staged = shuffle_bytes(input, sizeof(double));
    input = staged;
  }
  const auto enc = deflate_compress(input);
  out.put(static_cast<std::uint64_t>(enc.size()));
  out.put_bytes(enc);
  return std::move(out).take();
}

void DeflateCompressor::decompress(std::span<const byte_t> stream,
                                   std::span<double> out) const {
  ByteReader in(stream);
  if (in.get<std::uint32_t>() != kMagicDeflate)
    throw corrupt_stream_error("deflate: bad magic");
  const auto n = in.get<std::uint64_t>();
  if (n != out.size()) throw corrupt_stream_error("deflate: size mismatch");
  const bool shuffled = in.get<std::uint8_t>() != 0;
  const auto enc_size = in.get<std::uint64_t>();
  auto decoded =
      deflate_decompress(in.get_bytes(enc_size), n * sizeof(double));
  if (shuffled) decoded = unshuffle_bytes(decoded, sizeof(double));
  bytes_to_doubles(decoded, out);
}

std::vector<byte_t> Lz4Compressor::compress(std::span<const double> data) const {
  ByteWriter out;
  out.put(kMagicLz4);
  out.put(static_cast<std::uint64_t>(data.size()));
  out.put(static_cast<std::uint8_t>(shuffle_ ? 1 : 0));
  std::vector<byte_t> staged;
  std::span<const byte_t> input = as_bytes(data);
  if (shuffle_) {
    staged = shuffle_bytes(input, sizeof(double));
    input = staged;
  }
  const auto enc = lz4_compress(input);
  out.put(static_cast<std::uint64_t>(enc.size()));
  out.put_bytes(enc);
  return std::move(out).take();
}

void Lz4Compressor::decompress(std::span<const byte_t> stream,
                               std::span<double> out) const {
  ByteReader in(stream);
  if (in.get<std::uint32_t>() != kMagicLz4)
    throw corrupt_stream_error("lz4: bad magic");
  const auto n = in.get<std::uint64_t>();
  if (n != out.size()) throw corrupt_stream_error("lz4: size mismatch");
  const bool shuffled = in.get<std::uint8_t>() != 0;
  const auto enc_size = in.get<std::uint64_t>();
  auto decoded = lz4_decompress(in.get_bytes(enc_size), n * sizeof(double));
  if (shuffled) decoded = unshuffle_bytes(decoded, sizeof(double));
  bytes_to_doubles(decoded, out);
}

std::vector<byte_t> ShuffleRleCompressor::compress(
    std::span<const double> data) const {
  ByteWriter out;
  out.put(kMagicShufRle);
  out.put(static_cast<std::uint64_t>(data.size()));
  const auto shuffled = shuffle_bytes(as_bytes(data), sizeof(double));
  const auto enc = rle_encode(shuffled);
  out.put(static_cast<std::uint64_t>(enc.size()));
  out.put_bytes(enc);
  return std::move(out).take();
}

void ShuffleRleCompressor::decompress(std::span<const byte_t> stream,
                                      std::span<double> out) const {
  ByteReader in(stream);
  if (in.get<std::uint32_t>() != kMagicShufRle)
    throw corrupt_stream_error("shuffle-rle: bad magic");
  const auto n = in.get<std::uint64_t>();
  if (n != out.size()) throw corrupt_stream_error("shuffle-rle: size mismatch");
  const auto enc_size = in.get<std::uint64_t>();
  const auto decoded =
      rle_decode(in.get_bytes(enc_size), n * sizeof(double));
  bytes_to_doubles(unshuffle_bytes(decoded, sizeof(double)), out);
}

}  // namespace lck

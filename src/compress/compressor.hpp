#pragma once
/// \file compressor.hpp
/// \brief Abstract interfaces for the lossless and error-bounded lossy
///        compressors used by the checkpointing layer.

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace lck {

/// Error-bound specification for lossy compressors (SZ semantics).
struct ErrorBound {
  enum class Mode {
    kAbsolute,            ///< |x − x'| ≤ value
    kValueRangeRelative,  ///< |x − x'| ≤ value · (max(x) − min(x))
    kPointwiseRelative,   ///< |x_i − x'_i| ≤ value · |x_i|  (paper §4.4.1)
  };
  Mode mode = Mode::kPointwiseRelative;
  double value = 1e-4;

  static ErrorBound absolute(double v) { return {Mode::kAbsolute, v}; }
  static ErrorBound value_range_rel(double v) { return {Mode::kValueRangeRelative, v}; }
  static ErrorBound pointwise_rel(double v) { return {Mode::kPointwiseRelative, v}; }
};

/// Common interface: compress a double vector to bytes and back.
///
/// The compressed stream is self-describing (element count embedded), but
/// decompress() also takes the expected output span as a cross-check —
/// the checkpointing layer always knows the size of a protected variable.
class Compressor {
 public:
  virtual ~Compressor() = default;

  /// Short identifier, e.g. "sz", "zfp", "deflate", "none".
  [[nodiscard]] virtual std::string name() const = 0;

  /// True for error-bounded lossy compressors.
  [[nodiscard]] virtual bool lossy() const noexcept = 0;

  /// Compress `data` into a self-describing byte stream.
  [[nodiscard]] virtual std::vector<byte_t> compress(
      std::span<const double> data) const = 0;

  /// Decompress `stream` into `out`. Throws corrupt_stream_error if the
  /// stream is malformed or its element count differs from out.size().
  virtual void decompress(std::span<const byte_t> stream,
                          std::span<double> out) const = 0;
};

/// Lossy compressors additionally carry a (mutable) error bound, so the
/// checkpointing layer can adapt it per snapshot (Theorem 3 for GMRES).
class LossyCompressor : public Compressor {
 public:
  [[nodiscard]] bool lossy() const noexcept final { return true; }

  void set_error_bound(ErrorBound eb) { eb_ = eb; }
  [[nodiscard]] ErrorBound error_bound() const noexcept { return eb_; }

 protected:
  explicit LossyCompressor(ErrorBound eb) : eb_(eb) {}
  ErrorBound eb_;
};

/// Identity "compressor" — the traditional checkpointing scheme.
class NoneCompressor final : public Compressor {
 public:
  /// Stream layout constants, public so the checkpoint serializer can emit
  /// the verbatim format directly without an intermediate payload buffer.
  static constexpr std::uint32_t kMagic = 0x454e4f4eu;  // "NONE"
  static constexpr std::size_t kHeaderBytes =
      sizeof(std::uint32_t) + sizeof(std::uint64_t);

  [[nodiscard]] std::string name() const override { return "none"; }
  [[nodiscard]] bool lossy() const noexcept override { return false; }
  [[nodiscard]] std::vector<byte_t> compress(
      std::span<const double> data) const override;
  void decompress(std::span<const byte_t> stream,
                  std::span<double> out) const override;
};

/// Factory: create a compressor by name.
/// Names: "none", "rle", "shuffle-rle", "deflate", "shuffle-deflate",
/// "sz", "zfp", "trunc". Lossy ones receive `eb`. A "block+" prefix
/// (e.g. "block+sz") wraps the inner compressor in the parallel
/// block-compression pipeline (see block_compressor.hpp).
[[nodiscard]] std::unique_ptr<Compressor> make_compressor(
    const std::string& name, ErrorBound eb = ErrorBound::pointwise_rel(1e-4));

/// Convenience: compression ratio achieved on `data` (original/compressed).
[[nodiscard]] double compression_ratio(const Compressor& c,
                                       std::span<const double> data);

}  // namespace lck

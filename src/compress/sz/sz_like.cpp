#include "compress/sz/sz_like.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#include "common/bit_io.hpp"
#include "common/byte_buffer.hpp"
#include "compress/exact_array.hpp"
#include "compress/huffman.hpp"
#include "compress/lossless/byte_codecs.hpp"

namespace lck {
namespace {

// "2SZ1": v2 streams encode the pointwise-relative exact array compactly
// (nonzero bitset + nonzero values) instead of 8 B per exact element.
constexpr std::uint32_t kMagic = 0x315a5332u;
constexpr std::uint32_t kRadius = SzLikeCompressor::kQuantRadius;
constexpr std::uint32_t kAlphabet = 2 * kRadius;  // code 0 = unpredictable

/// Adaptive 3-predictor bank over the reconstructed history. Encoder and
/// decoder both run this deterministically.
///
/// Each element needs the three predictor outputs twice — once to pick the
/// currently-best prediction and once for the hindsight rank update — so
/// candidates() evaluates them a single time per element and both select()
/// and push() consume the cached values. Same expressions at the same
/// history state as the old predict()/push() pair, so streams are
/// byte-identical while the per-element bank arithmetic is halved.
class PredictorBank {
 public:
  /// The three predictor outputs at the current history state
  /// (h1=x'_{i-1}, h2=x'_{i-2}, h3=x'_{i-3}; zeros until warm).
  struct Candidates {
    double p0, p1, p2;
  };

  [[nodiscard]] Candidates candidates() const noexcept {
    return {h1_,                          // constant (Lorenzo-1D)
            2.0 * h1_ - h2_,              // linear extrapolation
            3.0 * h1_ - 3.0 * h2_ + h3_}; // quadratic extrapolation
  }

  /// Prediction for the next point: the candidate ranked best so far.
  [[nodiscard]] double select(const Candidates& c) const noexcept {
    switch (best_) {
      case 1: return c.p1;
      case 2: return c.p2;
      default: return c.p0;
    }
  }

  /// After reconstructing x', update history and re-rank predictors by
  /// their error on this point (hindsight adaptation, no side info).
  /// `c` must be candidates() sampled before this push.
  void push(double reconstructed, const Candidates& c) noexcept {
    const double e0 = std::fabs(reconstructed - c.p0);
    const double e1 = std::fabs(reconstructed - c.p1);
    const double e2 = std::fabs(reconstructed - c.p2);
    best_ = 0;
    double be = e0;
    if (e1 < be) { best_ = 1; be = e1; }
    if (e2 < be) { best_ = 2; }
    h3_ = h2_;
    h2_ = h1_;
    h1_ = reconstructed;
  }

 private:
  double h1_ = 0.0, h2_ = 0.0, h3_ = 0.0;
  int best_ = 0;
};

/// Elements per encode block: the codes slice, outlier scratch, and bank
/// state stay L1/L2-resident while the inner loop runs branch-light.
constexpr std::size_t kSzBlock = 4096;

/// Core absolute-error-bounded compressor for a raw double sequence.
/// Appends to `out`: quantizer params, Huffman table, outliers, payload.
void core_compress(ByteWriter& out, std::span<const double> data, double eb) {
  const std::size_t n = data.size();
  std::vector<std::uint32_t> codes(n);
  std::vector<double> outliers;
  std::vector<double> block_outliers;
  block_outliers.reserve(kSzBlock);
  PredictorBank bank;

  const double inv_step = eb > 0.0 ? 1.0 / (2.0 * eb) : 0.0;
  // 2·eb·q associates left-to-right, so hoisting (2.0·eb) out of the loop is
  // the identical computation.
  const double two_eb = 2.0 * eb;
  // Blocked two-phase encode: the tight quantize loop fills a block's worth
  // of codes plus a small outlier scratch, then outliers merge into the
  // global array once per block (no per-element push_back growth checks on
  // the large vector).
  for (std::size_t b0 = 0; b0 < n; b0 += kSzBlock) {
    const std::size_t b1 = std::min(n, b0 + kSzBlock);
    block_outliers.clear();
    for (std::size_t i = b0; i < b1; ++i) {
      const double x = data[i];
      const auto cand = bank.candidates();
      const double pred = bank.select(cand);
      // eb == 0 still enters the predicted path: inv_step is then 0, so the
      // candidate is the prediction itself and the |candidate − x| ≤ 0 check
      // admits it only when the predictor is exact (e.g. constant data).
      if (std::isfinite(pred)) {
        const double q = std::nearbyint((x - pred) * inv_step);
        if (std::fabs(q) < static_cast<double>(kRadius)) {
          const double candidate = pred + two_eb * q;
          if (std::fabs(candidate - x) <= eb) {
            codes[i] = static_cast<std::uint32_t>(
                static_cast<std::int64_t>(q) + static_cast<std::int64_t>(kRadius));
            bank.push(candidate, cand);
            continue;
          }
        }
      }
      // Unpredictable: store verbatim (exact).
      codes[i] = 0;
      block_outliers.push_back(x);
      bank.push(x, cand);
    }
    outliers.insert(outliers.end(), block_outliers.begin(),
                    block_outliers.end());
  }

  const auto freq = count_frequencies(codes, kAlphabet);
  const auto lengths = huffman_code_lengths(freq);
  const HuffmanEncoder enc(lengths);

  out.put(eb);
  out.put(static_cast<std::uint64_t>(n));
  out.put(kRadius);
  write_code_lengths(out, lengths);
  out.put(static_cast<std::uint64_t>(outliers.size()));
  out.put_array(outliers.data(), outliers.size());

  BitWriter bw;
  for (const auto c : codes) enc.encode(bw, c);
  const auto payload = bw.finish();
  out.put(static_cast<std::uint64_t>(payload.size()));
  out.put_bytes(payload);
}

/// Inverse of core_compress. Returns exactly `expect_n` doubles.
std::vector<double> core_decompress(ByteReader& in, std::size_t expect_n) {
  const auto eb = in.get<double>();
  const auto n = in.get<std::uint64_t>();
  const auto radius = in.get<std::uint32_t>();
  if (n != expect_n) throw corrupt_stream_error("sz: element count mismatch");
  if (radius != kRadius) throw corrupt_stream_error("sz: radius mismatch");

  const auto lengths = read_code_lengths(in, kAlphabet);
  const HuffmanDecoder dec(lengths);
  const auto outlier_count = in.get<std::uint64_t>();
  std::vector<double> outliers(outlier_count);
  in.get_array(outliers.data(), outlier_count);
  const auto payload_size = in.get<std::uint64_t>();
  BitReader br(in.get_bytes(payload_size));

  std::vector<double> out(n);
  PredictorBank bank;
  std::size_t next_outlier = 0;
  const double two_eb = 2.0 * eb;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t code = dec.decode(br);
    const auto cand = bank.candidates();
    double x;
    if (code == 0) {
      if (next_outlier >= outliers.size())
        throw corrupt_stream_error("sz: outlier stream exhausted");
      x = outliers[next_outlier++];
    } else {
      const double q = static_cast<double>(static_cast<std::int64_t>(code) -
                                           static_cast<std::int64_t>(radius));
      x = bank.select(cand) + two_eb * q;
    }
    out[i] = x;
    bank.push(x, cand);
  }
  if (next_outlier != outliers.size())
    throw corrupt_stream_error("sz: unused outliers");
  return out;
}

}  // namespace

std::vector<byte_t> SzLikeCompressor::compress(
    std::span<const double> data) const {
  const std::size_t n = data.size();
  ByteWriter out(n / 2 + 64);
  out.put(kMagic);
  out.put(static_cast<std::uint64_t>(n));
  out.put(static_cast<std::uint8_t>(eb_.mode));
  out.put(eb_.value);

  switch (eb_.mode) {
    case ErrorBound::Mode::kAbsolute: {
      core_compress(out, data, eb_.value);
      break;
    }
    case ErrorBound::Mode::kValueRangeRelative: {
      double lo = std::numeric_limits<double>::infinity();
      double hi = -std::numeric_limits<double>::infinity();
      for (const double x : data) {
        lo = std::min(lo, x);
        hi = std::max(hi, x);
      }
      // Degenerate range (constant or single-element data) means the bound
      // value·(max−min) is zero: store exactly (core handles eb == 0).
      const double range = n > 0 ? hi - lo : 0.0;
      const double eb_abs = eb_.value * range;
      core_compress(out, data, eb_abs);
      break;
    }
    case ErrorBound::Mode::kPointwiseRelative: {
      // Log-transform: compress log2|x| with absolute bound log2(1+eb).
      // Zeros and non-finite values are recorded exactly via bitmaps.
      std::vector<bool> zero_mask(n), sign_mask(n);
      std::vector<double> logs;
      logs.reserve(n);
      // eb == 0 means lossless; the log/exp round trip is not bit-exact, so
      // route every element through the verbatim path in that case.
      const bool exact_only = eb_.value <= 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        const double x = data[i];
        const bool is_zero = exact_only || x == 0.0 || !std::isfinite(x) ||
                             std::fabs(x) < std::numeric_limits<double>::min();
        zero_mask[i] = is_zero;
        sign_mask[i] = std::signbit(x);
        if (!is_zero) logs.push_back(std::log2(std::fabs(x)));
      }
      write_rle_bitset(out, zero_mask);
      write_rle_bitset(out, sign_mask);
      // Compact exact array (see exact_array.hpp): zeros cost ~0 bits, so
      // sparse fields stop bottoming out at ratio ≈ 1.
      write_exact_array(out, data, zero_mask);

      // 0.999 safety factor absorbs the log2/exp2 rounding so the pointwise
      // bound |x−x'| ≤ eb·|x| holds exactly (verified by property tests).
      const double log_eb = std::log2(1.0 + 0.999 * eb_.value);
      out.put(static_cast<std::uint64_t>(logs.size()));
      core_compress(out, logs, log_eb);
      break;
    }
  }
  return std::move(out).take();
}

void SzLikeCompressor::decompress(std::span<const byte_t> stream,
                                  std::span<double> out) const {
  ByteReader in(stream);
  if (in.get<std::uint32_t>() != kMagic)
    throw corrupt_stream_error("sz: bad magic");
  const auto n = in.get<std::uint64_t>();
  if (n != out.size()) throw corrupt_stream_error("sz: output size mismatch");
  const auto mode = static_cast<ErrorBound::Mode>(in.get<std::uint8_t>());
  (void)in.get<double>();  // eb value (informational)

  switch (mode) {
    case ErrorBound::Mode::kAbsolute:
    case ErrorBound::Mode::kValueRangeRelative: {
      const auto vals = core_decompress(in, n);
      std::copy(vals.begin(), vals.end(), out.begin());
      break;
    }
    case ErrorBound::Mode::kPointwiseRelative: {
      const auto zero_mask = read_rle_bitset(in, n);
      const auto sign_mask = read_rle_bitset(in, n);
      std::size_t exact_entries = 0;
      for (std::size_t i = 0; i < n; ++i)
        if (zero_mask[i]) ++exact_entries;
      ExactArrayReader exact(in, exact_entries);
      const auto log_count = in.get<std::uint64_t>();
      const auto logs = core_decompress(in, log_count);

      std::size_t li = 0;
      for (std::size_t i = 0; i < n; ++i) {
        if (zero_mask[i]) {
          out[i] = exact.next(sign_mask[i]);
        } else {
          if (li >= logs.size())
            throw corrupt_stream_error("sz: log stream exhausted");
          const double mag = std::exp2(logs[li++]);
          out[i] = sign_mask[i] ? -mag : mag;
        }
      }
      break;
    }
    default:
      throw corrupt_stream_error("sz: unknown error-bound mode");
  }
}

}  // namespace lck

#pragma once
/// \file sz_like.hpp
/// \brief SZ-style prediction-based error-bounded lossy compressor
///        (stand-in for SZ 1.4 used by the paper).
///
/// Pipeline (per SZ's design):
///  1. Prediction — adaptive best-of-three curve-fitting predictor
///     (constant / linear / quadratic extrapolation from the *reconstructed*
///     history, so encoder and decoder stay in lock-step without side
///     information: each point uses the predictor that performed best on the
///     previous point).
///  2. Error-bounded linear quantization of the prediction residual into
///     2·radius bins (code 0 reserved for unpredictable points, which are
///     stored verbatim).
///  3. Canonical Huffman coding of the quantization codes.
///
/// Error-bound modes (ErrorBound::Mode):
///  - kAbsolute: |x−x'| ≤ eb directly on the quantizer.
///  - kValueRangeRelative: eb_abs = eb·(max−min), then as absolute.
///  - kPointwiseRelative: the paper's §4.4 definition |x_i−x'_i| ≤ eb·|x_i|,
///    implemented by compressing log₂|x_i| with an absolute bound
///    log₂(1+eb) plus exact sign/zero bitmaps.

#include "compress/compressor.hpp"

namespace lck {

class SzLikeCompressor final : public LossyCompressor {
 public:
  explicit SzLikeCompressor(ErrorBound eb = ErrorBound::pointwise_rel(1e-4))
      : LossyCompressor(eb) {}

  [[nodiscard]] std::string name() const override { return "sz"; }

  [[nodiscard]] std::vector<byte_t> compress(
      std::span<const double> data) const override;

  void decompress(std::span<const byte_t> stream,
                  std::span<double> out) const override;

  /// Quantization radius (bins on each side of the prediction). 32768
  /// matches SZ 1.4's default 65536 intervals.
  static constexpr std::uint32_t kQuantRadius = 32768;
};

}  // namespace lck

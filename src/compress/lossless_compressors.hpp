#pragma once
/// \file lossless_compressors.hpp
/// \brief Compressor-interface wrappers around the lossless byte codecs:
///        RLE, shuffle+RLE, deflate-like, shuffle+deflate.

#include "compress/compressor.hpp"

namespace lck {

/// Byte-level run-length coding of the raw double array.
class RleCompressor final : public Compressor {
 public:
  [[nodiscard]] std::string name() const override { return "rle"; }
  [[nodiscard]] bool lossy() const noexcept override { return false; }
  [[nodiscard]] std::vector<byte_t> compress(
      std::span<const double> data) const override;
  void decompress(std::span<const byte_t> stream,
                  std::span<double> out) const override;
};

/// LZ77 + Huffman on the raw double array — the gzip stand-in used for
/// "lossless checkpointing" in the paper's evaluation.
class DeflateCompressor final : public Compressor {
 public:
  explicit DeflateCompressor(bool shuffle = false) : shuffle_(shuffle) {}
  [[nodiscard]] std::string name() const override {
    return shuffle_ ? "shuffle-deflate" : "deflate";
  }
  [[nodiscard]] bool lossy() const noexcept override { return false; }
  [[nodiscard]] std::vector<byte_t> compress(
      std::span<const double> data) const override;
  void decompress(std::span<const byte_t> stream,
                  std::span<double> out) const override;

 private:
  bool shuffle_;
};

/// LZ4-class fast LZ77 on the raw double array — byte-aligned tokens, no
/// entropy stage, an order of magnitude faster than the deflate-like codec
/// at a lower ratio. Also available as the "lz4" streaming frame style.
class Lz4Compressor final : public Compressor {
 public:
  explicit Lz4Compressor(bool shuffle = false) : shuffle_(shuffle) {}
  [[nodiscard]] std::string name() const override {
    return shuffle_ ? "shuffle-lz4" : "lz4";
  }
  [[nodiscard]] bool lossy() const noexcept override { return false; }
  [[nodiscard]] std::vector<byte_t> compress(
      std::span<const double> data) const override;
  void decompress(std::span<const byte_t> stream,
                  std::span<double> out) const override;

 private:
  bool shuffle_;
};

/// Byte-shuffle + RLE (fast, moderate ratio on smooth data).
class ShuffleRleCompressor final : public Compressor {
 public:
  [[nodiscard]] std::string name() const override { return "shuffle-rle"; }
  [[nodiscard]] bool lossy() const noexcept override { return false; }
  [[nodiscard]] std::vector<byte_t> compress(
      std::span<const double> data) const override;
  void decompress(std::span<const byte_t> stream,
                  std::span<double> out) const override;
};

}  // namespace lck

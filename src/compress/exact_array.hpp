#pragma once
/// \file exact_array.hpp
/// \brief Shared helpers for the pointwise-relative stream layout: RLE
///        bitsets and the compact "exact entries" encoding.
///
/// The pointwise-relative codecs (SzLikeCompressor's kPointwiseRelative
/// branch and PointwiseRelativeAdapter) store some entries verbatim: zeros,
/// subnormals, non-finites, and everything when eb == 0. Those entries are
/// dominated by ±0.0 in sparse solver fields, so a verbatim 8 B/element
/// array would pin the ratio at ≈ 1. Instead an RLE bitset marks the rare
/// non-zero exact entries and only their values are stored; zeros rebuild
/// from the caller's sign bitset (±0.0 bit-exactly).

#include <span>
#include <vector>

#include "common/bit_io.hpp"
#include "common/byte_buffer.hpp"
#include "compress/lossless/byte_codecs.hpp"

namespace lck {

/// Write a bitset of n bits, RLE-compressed: solver sign/zero masks are
/// almost always constant, so this costs ~0 bits per element instead of 1.
inline void write_rle_bitset(ByteWriter& out, const std::vector<bool>& bits) {
  BitWriter bw;
  for (const bool b : bits) bw.write_bit(b ? 1u : 0u);
  const auto rle = rle_encode(bw.finish());
  out.put(static_cast<std::uint64_t>(rle.size()));
  out.put_bytes(rle);
}

inline std::vector<bool> read_rle_bitset(ByteReader& in, std::size_t n) {
  const auto rle_size = in.get<std::uint64_t>();
  const auto packed = rle_decode(in.get_bytes(rle_size), (n + 7) / 8);
  BitReader br(packed);
  std::vector<bool> bits(n);
  for (std::size_t i = 0; i < n; ++i) bits[i] = br.read_bit() != 0;
  return bits;
}

/// Append the compact exact-array encoding for the entries of `data` whose
/// `exact_mask` bit is set: an RLE nonzero bitset over the exact entries,
/// then a length-prefixed verbatim array of only the non-zero values.
inline void write_exact_array(ByteWriter& out, std::span<const double> data,
                              const std::vector<bool>& exact_mask) {
  std::vector<bool> nonzero;
  std::vector<double> values;
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (!exact_mask[i]) continue;
    const double x = data[i];
    const bool is_nonzero = x != 0.0;  // ±0.0 compare equal: both implied
    nonzero.push_back(is_nonzero);
    if (is_nonzero) values.push_back(x);
  }
  write_rle_bitset(out, nonzero);
  out.put(static_cast<std::uint64_t>(values.size()));
  out.put_array(values.data(), values.size());
}

/// Streaming decoder for write_exact_array's output. Construct with the
/// number of exact entries (the popcount of the caller's exact mask), then
/// call next() once per exact entry in order.
class ExactArrayReader {
 public:
  ExactArrayReader(ByteReader& in, std::size_t exact_entries)
      : nonzero_(read_rle_bitset(in, exact_entries)) {
    const auto count = in.get<std::uint64_t>();
    values_.resize(count);
    in.get_array(values_.data(), count);
  }

  /// Value of the next exact entry; `negative` restores the sign of an
  /// implied zero (±0.0 bit-exactly).
  double next(bool negative) {
    if (entry_ >= nonzero_.size())
      throw corrupt_stream_error("exact array: entry stream exhausted");
    if (nonzero_[entry_++]) {
      if (value_ >= values_.size())
        throw corrupt_stream_error("exact array: value stream exhausted");
      return values_[value_++];
    }
    return negative ? -0.0 : 0.0;
  }

 private:
  std::vector<bool> nonzero_;
  std::vector<double> values_;
  std::size_t entry_ = 0;
  std::size_t value_ = 0;
};

}  // namespace lck

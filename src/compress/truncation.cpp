#include "compress/truncation.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#include "common/byte_buffer.hpp"
#include "compress/lossless/byte_codecs.hpp"
#include "compress/lossless/deflate_like.hpp"

namespace lck {
namespace {

constexpr std::uint32_t kMagic = 0x434e5254u;  // "TRNC"

/// Round `x` so that the result differs from x by at most eb, clearing as
/// many low mantissa bits as the bound allows (round-to-nearest via the
/// classic add-half-then-mask on the bit pattern).
double groom(double x, double eb) {
  if (!std::isfinite(x) || eb <= 0.0) return x;
  // Exponent of x: ulp(x) = 2^(e-52) with |x| in [2^e, 2^(e+1)).
  int e = 0;
  std::frexp(x, &e);  // |x| in [2^(e-1), 2^e)
  // Keep bits down to weight 2·eb: bits to clear = floor(log2(2eb / ulp)).
  const double ulp = std::ldexp(1.0, e - 53);
  if (ulp >= eb) return x;  // bound tighter than representable: keep all
  int clear_bits = static_cast<int>(std::log2(eb / ulp));
  clear_bits = std::min(clear_bits, 52);
  if (clear_bits <= 0) return x;

  std::uint64_t bits;
  std::memcpy(&bits, &x, sizeof(bits));
  const std::uint64_t half = 1ull << (clear_bits - 1);
  const std::uint64_t mask = ~((1ull << clear_bits) - 1);
  // Round to nearest; saturating add cannot overflow into the sign bit for
  // finite x below the max exponent, and we verify the bound afterwards.
  const std::uint64_t rounded = (bits + half) & mask;
  double y;
  std::memcpy(&y, &rounded, sizeof(y));
  if (!std::isfinite(y) || std::fabs(y - x) > eb) return x;  // safe fallback
  return y;
}

/// clear_bits in groom() depends on x only through its biased exponent (the
/// frexp/ldexp/log2 chain), so for a fixed eb all 2046 normal exponents can
/// be resolved once into a table and the hot loop reduces to an exponent
/// extraction + add-half-then-mask. Entries are computed with the exact
/// scalar formulas above (including log2's boundary rounding), so
/// groom_fast() is bit-identical to groom(); zero/denormal (biased 0) and
/// inf/nan (biased 0x7ff) fall back to the scalar path.
struct GroomTable {
  // half[b] == 0 means "keep x unchanged" for that biased exponent.
  std::uint64_t half[2048];
  std::uint64_t mask[2048];

  explicit GroomTable(double eb) {
    half[0] = half[2047] = 0;
    mask[0] = mask[2047] = ~0ull;
    for (int b = 1; b <= 2046; ++b) {
      // A sample value with biased exponent b; frexp(x) then yields
      // e = b − 1022, identical to the scalar path for every x in the bin.
      const int e = b - 1022;
      half[b] = 0;
      mask[b] = ~0ull;
      const double ulp = std::ldexp(1.0, e - 53);
      if (ulp >= eb) continue;
      int clear_bits = static_cast<int>(std::log2(eb / ulp));
      clear_bits = std::min(clear_bits, 52);
      if (clear_bits <= 0) continue;
      half[b] = 1ull << (clear_bits - 1);
      mask[b] = ~((1ull << clear_bits) - 1);
    }
  }

  [[nodiscard]] double groom_fast(double x, double eb) const {
    std::uint64_t bits;
    std::memcpy(&bits, &x, sizeof(bits));
    const auto b = static_cast<std::size_t>((bits >> 52) & 0x7ff);
    if (b == 0 || b == 2047) return groom(x, eb);  // zero/denormal, inf/nan
    const std::uint64_t h = half[b];
    if (h == 0) return x;
    const std::uint64_t rounded = (bits + h) & mask[b];
    double y;
    std::memcpy(&y, &rounded, sizeof(y));
    if (!std::isfinite(y) || std::fabs(y - x) > eb) return x;  // safe fallback
    return y;
  }
};

}  // namespace

std::vector<byte_t> TruncationCompressor::compress(
    std::span<const double> data) const {
  require(eb_.mode != ErrorBound::Mode::kPointwiseRelative,
          "trunc: wrap in PointwiseRelativeAdapter for pointwise-relative");
  double eb_abs = eb_.value;
  if (eb_.mode == ErrorBound::Mode::kValueRangeRelative) {
    double lo = std::numeric_limits<double>::infinity();
    double hi = -std::numeric_limits<double>::infinity();
    for (const double x : data) {
      lo = std::min(lo, x);
      hi = std::max(hi, x);
    }
    // Degenerate range (constant or single-element data) means the bound
    // value·(max−min) is zero: groom() keeps values exact when eb == 0.
    const double range = data.empty() ? 0.0 : hi - lo;
    eb_abs = eb_.value * range;
  }

  std::vector<double> groomed(data.size());
  if (eb_abs <= 0.0) {
    // groom() is the identity for non-positive bounds: copy verbatim.
    std::copy(data.begin(), data.end(), groomed.begin());
  } else {
    const GroomTable table(eb_abs);
    for (std::size_t i = 0; i < data.size(); ++i)
      groomed[i] = table.groom_fast(data[i], eb_abs);
  }

  const auto shuffled = shuffle_bytes(
      {reinterpret_cast<const byte_t*>(groomed.data()),
       groomed.size() * sizeof(double)},
      sizeof(double));
  const auto packed = deflate_compress(shuffled);

  ByteWriter out;
  out.put(kMagic);
  out.put(static_cast<std::uint64_t>(data.size()));
  out.put(eb_abs);
  out.put(static_cast<std::uint64_t>(packed.size()));
  out.put_bytes(packed);
  return std::move(out).take();
}

void TruncationCompressor::decompress(std::span<const byte_t> stream,
                                      std::span<double> out) const {
  ByteReader in(stream);
  if (in.get<std::uint32_t>() != kMagic)
    throw corrupt_stream_error("trunc: bad magic");
  const auto n = in.get<std::uint64_t>();
  if (n != out.size()) throw corrupt_stream_error("trunc: size mismatch");
  (void)in.get<double>();
  const auto packed_size = in.get<std::uint64_t>();
  const auto shuffled =
      deflate_decompress(in.get_bytes(packed_size), n * sizeof(double));
  const auto bytes = unshuffle_bytes(shuffled, sizeof(double));
  if (!bytes.empty()) std::memcpy(out.data(), bytes.data(), bytes.size());
}

}  // namespace lck

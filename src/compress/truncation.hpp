#pragma once
/// \file truncation.hpp
/// \brief Mantissa-truncation lossy compressor ("bit grooming"), a simple
///        baseline from the scientific-data-reduction literature the paper
///        cites (§2): round each double's mantissa to the coarsest
///        precision that respects the absolute error bound, then pass the
///        now highly-redundant bytes through shuffle + deflate.
///
/// Serves as the third lossy design point next to prediction-based (SZ)
/// and transform-based (ZFP) compression in the ablation benches. Supports
/// kAbsolute and kValueRangeRelative natively; wrap in
/// PointwiseRelativeAdapter for the paper's pointwise-relative semantics.

#include "compress/compressor.hpp"

namespace lck {

class TruncationCompressor final : public LossyCompressor {
 public:
  explicit TruncationCompressor(ErrorBound eb = ErrorBound::absolute(1e-6))
      : LossyCompressor(eb) {}

  [[nodiscard]] std::string name() const override { return "trunc"; }

  [[nodiscard]] std::vector<byte_t> compress(
      std::span<const double> data) const override;

  void decompress(std::span<const byte_t> stream,
                  std::span<double> out) const override;
};

}  // namespace lck

#include "compress/block_compressor.hpp"

#include <exception>
#include <mutex>

#include "common/byte_buffer.hpp"
#include "common/crc32.hpp"
#include "parallel/parallel_for.hpp"

namespace lck {
namespace {

constexpr std::uint32_t kMagicBlock = 0x314b4c42u;  // "BLK1"

/// Run `body(i)` for each block in parallel, capturing the first exception
/// and rethrowing it on the calling thread (throwing out of an OpenMP
/// region would terminate the process).
template <typename Body>
void for_each_block(index_t nblocks, Body&& body) {
  std::exception_ptr first_error;
  std::mutex error_mutex;
  parallel_for(0, nblocks, [&](index_t i) {
    try {
      body(i);
    } catch (...) {
      const std::lock_guard<std::mutex> lock(error_mutex);
      if (!first_error) first_error = std::current_exception();
    }
  });
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace

BlockCompressor::BlockCompressor(const Compressor* inner,
                                 std::size_t block_elems)
    : inner_(inner), block_elems_(block_elems) {
  require(inner_ != nullptr, "block compressor: null inner compressor");
  require(block_elems_ > 0, "block compressor: block size must be positive");
}

BlockCompressor::BlockCompressor(std::unique_ptr<Compressor> inner,
                                 std::size_t block_elems)
    : inner_(inner.get()), owned_(std::move(inner)), block_elems_(block_elems) {
  require(inner_ != nullptr, "block compressor: null inner compressor");
  require(block_elems_ > 0, "block compressor: block size must be positive");
}

std::string BlockCompressor::name() const {
  return "block+" + inner_->name();
}

bool BlockCompressor::lossy() const noexcept { return inner_->lossy(); }

std::vector<byte_t> BlockCompressor::compress(
    std::span<const double> data) const {
  const std::size_t total = data.size();
  const std::size_t nblocks = (total + block_elems_ - 1) / block_elems_;

  // Compress every block independently; this is the hot loop the OpenMP
  // pipeline parallelizes.
  std::vector<std::vector<byte_t>> payloads(nblocks);
  for_each_block(static_cast<index_t>(nblocks), [&](index_t b) {
    const std::size_t begin = static_cast<std::size_t>(b) * block_elems_;
    const std::size_t len = std::min(block_elems_, total - begin);
    payloads[static_cast<std::size_t>(b)] =
        inner_->compress(data.subspan(begin, len));
  });

  std::size_t payload_bytes = 0;
  for (const auto& p : payloads) payload_bytes += p.size();

  ByteWriter out(4 + 8 + 8 + 4 + nblocks * 12 + payload_bytes);
  out.put(kMagicBlock);
  out.put(static_cast<std::uint64_t>(total));
  out.put(static_cast<std::uint64_t>(block_elems_));
  out.put(static_cast<std::uint32_t>(nblocks));
  for (const auto& p : payloads) {
    out.put(static_cast<std::uint64_t>(p.size()));
    out.put(crc32(p));
  }
  for (const auto& p : payloads) out.put_bytes(p);
  return std::move(out).take();
}

void BlockCompressor::decompress(std::span<const byte_t> stream,
                                 std::span<double> out) const {
  ByteReader in(stream);
  if (in.get<std::uint32_t>() != kMagicBlock)
    throw corrupt_stream_error("block: bad magic");
  const auto total = in.get<std::uint64_t>();
  const auto stream_block_elems = in.get<std::uint64_t>();
  const auto nblocks = in.get<std::uint32_t>();
  if (total != out.size()) throw corrupt_stream_error("block: size mismatch");
  if (stream_block_elems == 0)
    throw corrupt_stream_error("block: zero block size");
  // (total-1)/be + 1 instead of (total+be-1)/be: the latter wraps for a
  // corrupted block size near 2^64 and would accept nblocks == 0.
  const std::uint64_t expect_blocks =
      total == 0 ? 0 : (total - 1) / stream_block_elems + 1;
  if (nblocks != expect_blocks)
    throw corrupt_stream_error("block: block count mismatch");

  struct Frame {
    std::size_t offset;
    std::size_t size;
    std::uint32_t crc;
  };
  std::vector<Frame> frames(nblocks);
  std::size_t payload_bytes = 0;
  for (std::uint32_t b = 0; b < nblocks; ++b) {
    frames[b].size = in.get<std::uint64_t>();
    frames[b].crc = in.get<std::uint32_t>();
    frames[b].offset = payload_bytes;
    // Validate each size before trusting it: a corrupted frame size must
    // surface as corrupt_stream_error, not as an overflowed accumulator
    // that defeats the bounds check below.
    if (frames[b].size > in.remaining())
      throw corrupt_stream_error("block: frame size exceeds stream");
    payload_bytes += frames[b].size;
    if (payload_bytes < frames[b].size)
      throw corrupt_stream_error("block: frame sizes overflow");
  }
  const auto payloads = in.get_bytes(payload_bytes);
  if (!in.exhausted())
    throw corrupt_stream_error("block: trailing bytes after payloads");

  for_each_block(static_cast<index_t>(nblocks), [&](index_t bi) {
    const auto& f = frames[static_cast<std::size_t>(bi)];
    const auto payload = payloads.subspan(f.offset, f.size);
    if (crc32(payload) != f.crc)
      throw corrupt_stream_error("block: CRC mismatch in block " +
                                 std::to_string(bi));
    const std::size_t begin =
        static_cast<std::size_t>(bi) * stream_block_elems;
    const std::size_t len =
        std::min<std::size_t>(stream_block_elems, total - begin);
    inner_->decompress(payload, out.subspan(begin, len));
  });
}

}  // namespace lck

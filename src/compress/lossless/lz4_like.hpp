#pragma once
/// \file lz4_like.hpp
/// \brief LZ4-class byte compressor: greedy hash-table LZ77 with
///        byte-aligned token coding and no entropy stage.
///
/// Same algorithm family as the LZ4 block format: sequences of
/// [token | literal-length extension | literals | 16-bit offset |
/// match-length extension], minimum match 4, 64 KiB window. Skipping the
/// Huffman stage trades ratio for an order of magnitude more throughput
/// than the deflate-like codec, which is what the streaming frame path
/// wants: compression must keep up with the store sink. The container is
/// custom (raw block, no xxHash footer) — we reproduce the algorithm
/// class, not the LZ4 frame format.

#include <span>
#include <vector>

#include "common/types.hpp"

namespace lck {

/// Worst-case compressed size for `n` input bytes (incompressible input
/// costs one extra literal-length byte per 255 literals, plus the token).
[[nodiscard]] constexpr std::size_t lz4_compress_bound(std::size_t n) noexcept {
  return n + n / 255 + 16;
}

/// Compress raw bytes. Always succeeds; worst case is lz4_compress_bound().
[[nodiscard]] std::vector<byte_t> lz4_compress(std::span<const byte_t> in);

/// Compress into a caller-provided buffer of at least
/// lz4_compress_bound(in.size()) bytes; returns the compressed size.
/// This is the allocation-free entry point the frame writer uses per frame.
[[nodiscard]] std::size_t lz4_compress_into(std::span<const byte_t> in,
                                            std::span<byte_t> out);

/// Decompress; `expected_size` must match the original input size exactly.
/// Throws corrupt_stream_error on malformed input (bad offsets, lengths
/// running past either buffer, or a short/long output).
[[nodiscard]] std::vector<byte_t> lz4_decompress(std::span<const byte_t> in,
                                                 std::size_t expected_size);

/// Decompress into a caller-provided buffer that must be filled exactly.
void lz4_decompress_into(std::span<const byte_t> in, std::span<byte_t> out);

}  // namespace lck

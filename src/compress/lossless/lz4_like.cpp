#include "compress/lossless/lz4_like.hpp"

#include <cstdint>
#include <cstring>

#include "common/simd.hpp"

namespace lck {
namespace {

constexpr std::size_t kMinMatch = 4;
constexpr std::size_t kMaxOffset = 65535;  // 64 KiB window
constexpr unsigned kHashBits = 13;         // 8 Ki-entry match table

inline std::uint32_t read_u32(const byte_t* p) noexcept {
  std::uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

/// Fibonacci-hash the 4-byte sequence at a candidate match position.
inline std::uint32_t hash4(std::uint32_t v) noexcept {
  return (v * 2654435761u) >> (32u - kHashBits);
}

/// Dispatched leading-equal-bytes counter (the hot loop of the matcher).
inline std::size_t match_len_ops(const byte_t* a, const byte_t* b,
                                 std::size_t limit) {
  return simd::ops().match_len(a, b, limit);
}

}  // namespace

std::size_t lz4_compress_into(std::span<const byte_t> in,
                              std::span<byte_t> out) {
  if (out.size() < lz4_compress_bound(in.size()))
    throw config_error("lz4: output buffer below compress bound");
  const std::size_t n = in.size();
  if (n == 0) return 0;

  byte_t* op = out.data();
  const byte_t* ip = in.data();

  const auto emit_sequence = [&](std::size_t lit_begin, std::size_t lit_len,
                                 std::size_t offset, std::size_t match_len) {
    const std::size_t lit_nib = lit_len < 15 ? lit_len : 15;
    const std::size_t mat_nib =
        offset == 0 ? 0
                    : (match_len - kMinMatch < 15 ? match_len - kMinMatch : 15);
    *op++ = static_cast<byte_t>((lit_nib << 4) | mat_nib);
    if (lit_len >= 15) {
      std::size_t rem = lit_len - 15;
      for (; rem >= 255; rem -= 255) *op++ = byte_t{255};
      *op++ = static_cast<byte_t>(rem);
    }
    if (lit_len > 0) std::memcpy(op, ip + lit_begin, lit_len);
    op += lit_len;
    if (offset != 0) {
      *op++ = static_cast<byte_t>(offset & 0xffu);
      *op++ = static_cast<byte_t>(offset >> 8);
      if (match_len - kMinMatch >= 15) {
        std::size_t rem = match_len - kMinMatch - 15;
        for (; rem >= 255; rem -= 255) *op++ = byte_t{255};
        *op++ = static_cast<byte_t>(rem);
      }
    }
  };

  // Positions + 1, so 0 means "empty slot".
  std::vector<std::uint32_t> table(std::size_t{1} << kHashBits, 0u);

  // LZ4 end-of-block rules: the last 5 bytes are always literals, and no
  // match may start within the last 12 bytes — they guarantee the decoder's
  // wild copies stay in bounds and give every block a literal-only tail.
  const std::size_t match_start_limit = n >= 12 ? n - 12 : 0;
  const std::size_t match_end_limit = n - 5;  // n >= 12 wherever this is used

  std::size_t pos = 0;
  std::size_t anchor = 0;
  while (pos < match_start_limit) {
    const std::uint32_t seq = read_u32(ip + pos);
    const std::uint32_t h = hash4(seq);
    const std::size_t cand = table[h];
    table[h] = static_cast<std::uint32_t>(pos + 1);
    if (cand != 0) {
      const std::size_t cpos = cand - 1;
      if (pos - cpos <= kMaxOffset && read_u32(ip + cpos) == seq) {
        // Extend the match with the dispatched chunked comparator
        // (pcmpeqb+movemask on x86). The cap keeps every compare — chunked
        // or scalar — inside [pos, match_end_limit), exactly the byte range
        // the old byte-at-a-time loop touched, so streams stay identical.
        const std::size_t len =
            kMinMatch + match_len_ops(ip + cpos + kMinMatch,
                                      ip + pos + kMinMatch,
                                      match_end_limit - pos - kMinMatch);
        emit_sequence(anchor, pos - anchor, pos - cpos, len);
        pos += len;
        anchor = pos;
        continue;
      }
    }
    ++pos;
  }
  emit_sequence(anchor, n - anchor, 0, 0);
  return static_cast<std::size_t>(op - out.data());
}

std::vector<byte_t> lz4_compress(std::span<const byte_t> in) {
  std::vector<byte_t> out(lz4_compress_bound(in.size()));
  out.resize(lz4_compress_into(in, out));
  return out;
}

void lz4_decompress_into(std::span<const byte_t> in, std::span<byte_t> out) {
  const std::size_t isz = in.size();
  const std::size_t osz = out.size();
  if (isz == 0) {
    if (osz != 0) throw corrupt_stream_error("lz4: empty stream");
    return;
  }
  std::size_t ip = 0;
  std::size_t op = 0;
  for (;;) {
    if (ip >= isz) throw corrupt_stream_error("lz4: truncated stream");
    const std::uint8_t token = static_cast<std::uint8_t>(in[ip++]);

    std::size_t lit = token >> 4;
    if (lit == 15) {
      std::uint8_t b;
      do {
        if (ip >= isz) throw corrupt_stream_error("lz4: truncated literals");
        b = static_cast<std::uint8_t>(in[ip++]);
        lit += b;
        if (lit > osz) throw corrupt_stream_error("lz4: literal overrun");
      } while (b == 255);
    }
    if (lit > osz - op || lit > isz - ip)
      throw corrupt_stream_error("lz4: literal overrun");
    if (lit > 0) std::memcpy(out.data() + op, in.data() + ip, lit);
    op += lit;
    ip += lit;

    if (ip == isz) {  // a block always ends on a literal-only sequence
      if (op != osz) throw corrupt_stream_error("lz4: output size mismatch");
      return;
    }

    if (isz - ip < 2) throw corrupt_stream_error("lz4: truncated offset");
    const std::size_t offset = static_cast<std::size_t>(
        static_cast<std::uint8_t>(in[ip]) |
        (static_cast<std::uint8_t>(in[ip + 1]) << 8));
    ip += 2;
    if (offset == 0 || offset > op)
      throw corrupt_stream_error("lz4: bad match offset");

    std::size_t mlen = static_cast<std::size_t>(token & 15u) + kMinMatch;
    if ((token & 15u) == 15u) {
      std::uint8_t b;
      do {
        if (ip >= isz) throw corrupt_stream_error("lz4: truncated match len");
        b = static_cast<std::uint8_t>(in[ip++]);
        mlen += b;
        if (mlen > osz) throw corrupt_stream_error("lz4: match overrun");
      } while (b == 255);
    }
    if (mlen > osz - op) throw corrupt_stream_error("lz4: match overrun");
    // Byte-wise on purpose: offset < mlen means the match overlaps the
    // bytes it is producing (RLE-style), which memcpy/memmove get wrong.
    for (std::size_t i = 0; i < mlen; ++i)
      out[op + i] = out[op + i - offset];
    op += mlen;
  }
}

std::vector<byte_t> lz4_decompress(std::span<const byte_t> in,
                                   std::size_t expected_size) {
  std::vector<byte_t> out(expected_size);
  lz4_decompress_into(in, out);
  return out;
}

}  // namespace lck

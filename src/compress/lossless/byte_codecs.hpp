#pragma once
/// \file byte_codecs.hpp
/// \brief Byte-oriented lossless building blocks: run-length coding and the
///        byte-shuffle filter for floating-point arrays.

#include <span>
#include <vector>

#include "common/types.hpp"

namespace lck {

/// Run-length encode a byte stream. Token format:
///   0x00..0x7f  -> literal run of (token+1) bytes following
///   0x80..0xff  -> repeat next byte (token-0x7f+2) times  [3..130]
[[nodiscard]] std::vector<byte_t> rle_encode(std::span<const byte_t> in);
[[nodiscard]] std::vector<byte_t> rle_decode(std::span<const byte_t> in,
                                             std::size_t expected_size);

/// Byte-shuffle (transpose) filter: regroup the k-th byte of every
/// `elem_size`-byte element together. Exposes the redundancy in the high
/// (exponent) bytes of IEEE doubles to downstream byte coders.
[[nodiscard]] std::vector<byte_t> shuffle_bytes(std::span<const byte_t> in,
                                                std::size_t elem_size);
[[nodiscard]] std::vector<byte_t> unshuffle_bytes(std::span<const byte_t> in,
                                                  std::size_t elem_size);

}  // namespace lck

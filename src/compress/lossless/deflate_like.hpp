#pragma once
/// \file deflate_like.hpp
/// \brief LZ77 + canonical-Huffman byte compressor (the repo's gzip/DEFLATE
///        stand-in for "lossless checkpointing" in the paper).
///
/// Same algorithm family as RFC 1951: a 32 KiB sliding window with
/// hash-chain match finding, literals/lengths and distances entropy-coded
/// with dynamic canonical Huffman tables. The container format is custom
/// (single block, tables serialized via write_code_lengths) — we reproduce
/// the algorithm class, not the gzip file format.

#include <span>
#include <vector>

#include "common/types.hpp"

namespace lck {

/// Compress raw bytes. Always succeeds; incompressible input grows by a few
/// header bytes (a "stored" fallback keeps the worst case small).
[[nodiscard]] std::vector<byte_t> deflate_compress(std::span<const byte_t> in);

/// Decompress; `expected_size` must match the original input size.
[[nodiscard]] std::vector<byte_t> deflate_decompress(std::span<const byte_t> in,
                                                     std::size_t expected_size);

}  // namespace lck

#include "compress/lossless/byte_codecs.hpp"

#include <algorithm>

#include "common/simd.hpp"

namespace lck {

std::vector<byte_t> rle_encode(std::span<const byte_t> in) {
  std::vector<byte_t> out;
  out.reserve(in.size() / 2 + 16);
  std::size_t i = 0;
  while (i < in.size()) {
    // Measure the run starting at i.
    std::size_t run = 1;
    while (i + run < in.size() && in[i + run] == in[i] && run < 130) ++run;
    if (run >= 3) {
      out.push_back(static_cast<byte_t>(0x80 + (run - 3)));
      out.push_back(in[i]);
      i += run;
      continue;
    }
    // Accumulate a literal segment until the next run of >= 3 or 128 bytes.
    std::size_t lit_end = i + 1;
    while (lit_end < in.size() && lit_end - i < 128) {
      std::size_t r = 1;
      while (lit_end + r < in.size() && in[lit_end + r] == in[lit_end] && r < 3)
        ++r;
      if (r >= 3) break;
      ++lit_end;
    }
    const std::size_t lit_len = lit_end - i;
    out.push_back(static_cast<byte_t>(lit_len - 1));
    out.insert(out.end(), in.begin() + static_cast<std::ptrdiff_t>(i),
               in.begin() + static_cast<std::ptrdiff_t>(lit_end));
    i = lit_end;
  }
  return out;
}

std::vector<byte_t> rle_decode(std::span<const byte_t> in,
                               std::size_t expected_size) {
  std::vector<byte_t> out;
  out.reserve(expected_size);
  std::size_t i = 0;
  while (i < in.size()) {
    const byte_t tok = in[i++];
    if (tok < 0x80) {
      const std::size_t lit = static_cast<std::size_t>(tok) + 1;
      if (i + lit > in.size())
        throw corrupt_stream_error("rle: literal overruns input");
      out.insert(out.end(), in.begin() + static_cast<std::ptrdiff_t>(i),
                 in.begin() + static_cast<std::ptrdiff_t>(i + lit));
      i += lit;
    } else {
      if (i >= in.size()) throw corrupt_stream_error("rle: missing run byte");
      const std::size_t run = static_cast<std::size_t>(tok) - 0x80 + 3;
      out.insert(out.end(), run, in[i++]);
    }
    if (out.size() > expected_size)
      throw corrupt_stream_error("rle: output exceeds expected size");
  }
  if (out.size() != expected_size)
    throw corrupt_stream_error("rle: output size mismatch");
  return out;
}

namespace {

/// Elements per transpose tile. The shuffle is a (n × elem_size) byte
/// transpose; walking the whole element axis per byte lane streams
/// n·elem_size bytes of input from memory elem_size times over. Tiling by
/// kShuffleTile elements keeps the input tile (kShuffleTile·elem_size bytes,
/// 2 KiB for doubles) L1-resident across all lanes while each lane's output
/// run stays sequential. Pure permutation — output bytes are identical to
/// the untiled loop.
constexpr std::size_t kShuffleTile = 256;

}  // namespace

std::vector<byte_t> shuffle_bytes(std::span<const byte_t> in,
                                  std::size_t elem_size) {
  require(elem_size > 0, "shuffle: zero element size");
  require(in.size() % elem_size == 0, "shuffle: size not multiple of element");
  const std::size_t n = in.size() / elem_size;
  std::vector<byte_t> out(in.size());
  if (elem_size == 8) {
    // The dominant case (doubles): dispatched 8x8 byte-transpose kernel
    // (SSE2 unpack ladder on x86). Same permutation, so the output bytes —
    // and every downstream stream CRC — are identical to the tiled loop.
    simd::ops().shuffle8(in.data(), out.data(), n, 0, n);
    return out;
  }
  for (std::size_t t = 0; t < n; t += kShuffleTile) {
    const std::size_t te = std::min(n, t + kShuffleTile);
    for (std::size_t k = 0; k < elem_size; ++k)
      for (std::size_t e = t; e < te; ++e)
        out[k * n + e] = in[e * elem_size + k];
  }
  return out;
}

std::vector<byte_t> unshuffle_bytes(std::span<const byte_t> in,
                                    std::size_t elem_size) {
  require(elem_size > 0, "unshuffle: zero element size");
  require(in.size() % elem_size == 0, "unshuffle: size not multiple of element");
  const std::size_t n = in.size() / elem_size;
  std::vector<byte_t> out(in.size());
  if (elem_size == 8) {
    simd::ops().unshuffle8(in.data(), out.data(), n, 0, n);
    return out;
  }
  for (std::size_t t = 0; t < n; t += kShuffleTile) {
    const std::size_t te = std::min(n, t + kShuffleTile);
    for (std::size_t k = 0; k < elem_size; ++k)
      for (std::size_t e = t; e < te; ++e)
        out[e * elem_size + k] = in[k * n + e];
  }
  return out;
}

}  // namespace lck

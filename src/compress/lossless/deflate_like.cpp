#include "compress/lossless/deflate_like.hpp"

#include <algorithm>
#include <array>
#include <cstring>

#include "common/bit_io.hpp"
#include "common/byte_buffer.hpp"
#include "compress/huffman.hpp"

namespace lck {
namespace {

// ----- token alphabet (DEFLATE-style) --------------------------------------
// Literal/length alphabet: 0..255 literals, 256 end-of-block,
// 257..284 length codes. Distance alphabet: 0..29.
constexpr unsigned kEob = 256;
constexpr unsigned kLitLenAlphabet = 285;
constexpr unsigned kDistAlphabet = 30;
constexpr std::size_t kWindowSize = 32 * 1024;
constexpr std::size_t kMinMatch = 3;
constexpr std::size_t kMaxMatch = 258;

struct CodeRange {
  std::uint32_t base;
  std::uint8_t extra_bits;
};

// Length codes 257..284 (base length, extra bits) — RFC 1951 table.
constexpr std::array<CodeRange, 28> kLengthCodes{{
    {3, 0},  {4, 0},  {5, 0},  {6, 0},  {7, 0},  {8, 0},  {9, 0},  {10, 0},
    {11, 1}, {13, 1}, {15, 1}, {17, 1}, {19, 2}, {23, 2}, {27, 2}, {31, 2},
    {35, 3}, {43, 3}, {51, 3}, {59, 3}, {67, 4}, {83, 4}, {99, 4}, {115, 4},
    {131, 5}, {163, 5}, {195, 5}, {227, 5},
}};
// The RFC has code 285 = length 258 with 0 extra bits; we instead let code
// 284's 5 extra bits cover 227..258 (one value wider than RFC). Simpler and
// still exactly invertible.

// Distance codes 0..29 (base distance, extra bits) — RFC 1951 table.
constexpr std::array<CodeRange, 30> kDistCodes{{
    {1, 0},     {2, 0},     {3, 0},     {4, 0},      {5, 1},      {7, 1},
    {9, 2},     {13, 2},    {17, 3},    {25, 3},     {33, 4},     {49, 4},
    {65, 5},    {97, 5},    {129, 6},   {193, 6},    {257, 7},    {385, 7},
    {513, 8},   {769, 8},   {1025, 9},  {1537, 9},   {2049, 10},  {3073, 10},
    {4097, 11}, {6145, 11}, {8193, 12}, {12289, 12}, {16385, 13}, {24577, 13},
}};

unsigned length_code(std::size_t len) {
  for (unsigned c = static_cast<unsigned>(kLengthCodes.size()); c-- > 0;)
    if (len >= kLengthCodes[c].base) return c;
  throw corrupt_stream_error("deflate: bad match length");
}

unsigned dist_code(std::size_t dist) {
  for (unsigned c = static_cast<unsigned>(kDistCodes.size()); c-- > 0;)
    if (dist >= kDistCodes[c].base) return c;
  throw corrupt_stream_error("deflate: bad match distance");
}

// ----- LZ77 tokenization -----------------------------------------------------
struct Token {
  bool is_match;
  byte_t literal;          // when !is_match
  std::uint32_t length;    // when is_match
  std::uint32_t distance;  // when is_match
};

std::uint32_t hash3(const byte_t* p) noexcept {
  const std::uint32_t h = static_cast<std::uint32_t>(p[0]) |
                          (static_cast<std::uint32_t>(p[1]) << 8) |
                          (static_cast<std::uint32_t>(p[2]) << 16);
  return (h * 2654435761u) >> 17;  // 15-bit hash
}

std::vector<Token> tokenize(std::span<const byte_t> in) {
  constexpr std::size_t kHashSize = 1u << 15;
  constexpr int kMaxChainProbes = 64;
  std::vector<std::int64_t> head(kHashSize, -1);
  std::vector<std::int64_t> prev(in.size(), -1);
  std::vector<Token> tokens;
  tokens.reserve(in.size() / 4 + 16);

  // Link position j into the chain for its 3-byte hash.
  const auto insert = [&](std::size_t j) {
    const std::uint32_t h = hash3(in.data() + j);
    prev[j] = head[h];
    head[h] = static_cast<std::int64_t>(j);
  };

  std::size_t i = 0;
  while (i < in.size()) {
    std::size_t best_len = 0, best_dist = 0;
    const bool can_hash = i + kMinMatch <= in.size();
    if (can_hash) {
      std::int64_t cand = head[hash3(in.data() + i)];
      int probes = 0;
      while (cand >= 0 && i - static_cast<std::size_t>(cand) <= kWindowSize &&
             probes++ < kMaxChainProbes) {
        const std::size_t c = static_cast<std::size_t>(cand);
        const std::size_t limit = std::min(kMaxMatch, in.size() - i);
        std::size_t len = 0;
        while (len < limit && in[c + len] == in[i + len]) ++len;
        if (len > best_len) {
          best_len = len;
          best_dist = i - c;
          if (len == kMaxMatch) break;
        }
        cand = prev[c];
      }
    }
    if (best_len >= kMinMatch) {
      tokens.push_back({true, 0, static_cast<std::uint32_t>(best_len),
                        static_cast<std::uint32_t>(best_dist)});
      // Register all covered positions so later matches can reference them.
      for (std::size_t j = i; j < i + best_len && j + kMinMatch <= in.size(); ++j)
        insert(j);
      i += best_len;
    } else {
      if (can_hash) insert(i);
      tokens.push_back({false, in[i], 0, 0});
      ++i;
    }
  }
  return tokens;
}

constexpr byte_t kFormatHuffman = 1;
constexpr byte_t kFormatStored = 0;

}  // namespace

std::vector<byte_t> deflate_compress(std::span<const byte_t> in) {
  const std::vector<Token> tokens = tokenize(in);

  // Histogram both alphabets.
  std::vector<std::uint64_t> lit_freq(kLitLenAlphabet, 0);
  std::vector<std::uint64_t> dist_freq(kDistAlphabet, 0);
  for (const Token& t : tokens) {
    if (t.is_match) {
      ++lit_freq[257 + length_code(t.length)];
      ++dist_freq[dist_code(t.distance)];
    } else {
      ++lit_freq[t.literal];
    }
  }
  ++lit_freq[kEob];

  const auto lit_lengths = huffman_code_lengths(lit_freq);
  const auto dist_lengths = huffman_code_lengths(dist_freq);
  const HuffmanEncoder lit_enc(lit_lengths);
  const HuffmanEncoder dist_enc(dist_lengths);

  ByteWriter out;
  out.put(kFormatHuffman);
  out.put(static_cast<std::uint64_t>(in.size()));
  write_code_lengths(out, lit_lengths);
  write_code_lengths(out, dist_lengths);

  BitWriter bw;
  for (const Token& t : tokens) {
    if (t.is_match) {
      const unsigned lc = length_code(t.length);
      lit_enc.encode(bw, 257 + lc);
      bw.write_bits(t.length - kLengthCodes[lc].base, kLengthCodes[lc].extra_bits);
      const unsigned dc = dist_code(t.distance);
      dist_enc.encode(bw, dc);
      bw.write_bits(t.distance - kDistCodes[dc].base, kDistCodes[dc].extra_bits);
    } else {
      lit_enc.encode(bw, t.literal);
    }
  }
  lit_enc.encode(bw, kEob);
  const auto payload = bw.finish();
  out.put(static_cast<std::uint64_t>(payload.size()));
  out.put_bytes(payload);

  // Stored fallback if "compression" expanded the data.
  if (out.size() >= in.size() + 9) {
    ByteWriter stored;
    stored.put(kFormatStored);
    stored.put(static_cast<std::uint64_t>(in.size()));
    stored.put_bytes(in);
    return std::move(stored).take();
  }
  return std::move(out).take();
}

std::vector<byte_t> deflate_decompress(std::span<const byte_t> in,
                                       std::size_t expected_size) {
  ByteReader r(in);
  const auto format = r.get<byte_t>();
  const auto orig_size = r.get<std::uint64_t>();
  if (orig_size != expected_size)
    throw corrupt_stream_error("deflate: size mismatch");

  std::vector<byte_t> out;
  out.reserve(expected_size);

  if (format == kFormatStored) {
    const auto bytes = r.get_bytes(expected_size);
    out.assign(bytes.begin(), bytes.end());
    return out;
  }
  if (format != kFormatHuffman)
    throw corrupt_stream_error("deflate: unknown format byte");

  const auto lit_lengths = read_code_lengths(r, kLitLenAlphabet);
  const auto dist_lengths = read_code_lengths(r, kDistAlphabet);
  const HuffmanDecoder lit_dec(lit_lengths);
  const HuffmanDecoder dist_dec(dist_lengths);
  const auto payload_size = r.get<std::uint64_t>();
  BitReader br(r.get_bytes(payload_size));

  for (;;) {
    const std::uint32_t sym = lit_dec.decode(br);
    if (sym == kEob) break;
    if (sym < 256) {
      out.push_back(static_cast<byte_t>(sym));
    } else {
      const unsigned lc = sym - 257;
      if (lc >= kLengthCodes.size())
        throw corrupt_stream_error("deflate: bad length symbol");
      const std::size_t len =
          kLengthCodes[lc].base +
          br.read_bits(kLengthCodes[lc].extra_bits);
      const unsigned dc = dist_dec.decode(br);
      if (dc >= kDistCodes.size())
        throw corrupt_stream_error("deflate: bad distance symbol");
      const std::size_t dist =
          kDistCodes[dc].base + br.read_bits(kDistCodes[dc].extra_bits);
      if (dist == 0 || dist > out.size())
        throw corrupt_stream_error("deflate: distance out of window");
      for (std::size_t k = 0; k < len; ++k)
        out.push_back(out[out.size() - dist]);
    }
    if (out.size() > expected_size)
      throw corrupt_stream_error("deflate: output exceeds expected size");
  }
  if (out.size() != expected_size)
    throw corrupt_stream_error("deflate: output size mismatch");
  return out;
}

}  // namespace lck

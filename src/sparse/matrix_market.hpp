#pragma once
/// \file matrix_market.hpp
/// \brief Minimal Matrix Market (.mtx) reader/writer so users can run the
///        solvers and checkpointing on SuiteSparse matrices they obtain
///        themselves (e.g. the paper's KKT240).
///
/// Supports `matrix coordinate real {general|symmetric}`.

#include <iosfwd>
#include <string>

#include "sparse/csr.hpp"

namespace lck {

/// Parse a Matrix Market stream into CSR. Symmetric files are expanded to
/// full storage. Throws corrupt_stream_error on malformed input.
[[nodiscard]] CsrMatrix read_matrix_market(std::istream& in);

/// Convenience file loader.
[[nodiscard]] CsrMatrix load_matrix_market(const std::string& path);

/// Write a matrix in `matrix coordinate real general` format.
void write_matrix_market(std::ostream& out, const CsrMatrix& a);

}  // namespace lck

#pragma once
/// \file vector_ops.hpp
/// \brief Dense vector kernels (BLAS-1 style) used by all iterative solvers.
///
/// All kernels are OpenMP-parallel and operate on std::vector<double> /
/// std::span<double> so that solver code reads like the algorithm statements
/// in the paper (Algorithm 1/2).
///
/// The reductions (dot, norm2, norm_inf, and every fused kernel below) use a
/// *lane-canonical deterministic reduction*: the range is split into blocks
/// whose boundaries depend only on the length (via Partitioner), each block
/// folds into a fixed array of 8 logical lanes — lane l accumulating the
/// elements with (i − block_begin) ≡ l (mod 8) in increasing order — the
/// lanes are combined serially in lane order, and the per-block partials are
/// combined serially in block order. Because the association is fixed by the
/// *contract* rather than by the code that happens to run, the result is
/// bit-identical across thread count AND across the SIMD backends in
/// common/simd.hpp (scalar keeps 8 scalar accumulators, SSE2 four 2-wide
/// packs, AVX2 two 4-wide, AVX-512 one 8-wide — all the same association).
/// An OpenMP `reduction(+)` clause, by contrast, reassociates per thread
/// count; a naive vector-width-sized accumulator would reassociate per ISA.
/// The hot reductions dispatch to the runtime-selected simd::ops() table;
/// the generic deterministic_reduce_sum/max templates below implement the
/// same contract in portable code for everything else.

#include <cmath>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "common/simd.hpp"
#include "common/types.hpp"
#include "obs/pass_counter.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/partitioner.hpp"

namespace lck {

using Vector = std::vector<double>;

namespace detail {

/// Instrumentation: every kernel in this file adds the number of full-vector
/// data passes it performs (one relaxed atomic add per *call*, not per
/// element, so the cost is invisible next to the sweep itself). Tests and
/// benches use the counter to assert that the fused per-iteration solver
/// bodies really cut the sweep count, instead of trusting a comment. The
/// counter itself lives in obs/pass_counter.hpp so the observability layer
/// can sample it into the metrics registry.
inline void count_passes(std::uint64_t n) noexcept {
  obs::add_vector_passes(n);
}

}  // namespace detail

/// Total full-vector passes performed by vector_ops kernels so far.
/// (Shim over obs::vector_passes(), kept for existing callers/tests.)
[[nodiscard]] inline std::uint64_t vector_pass_count() noexcept {
  return obs::vector_passes();
}

inline void reset_vector_pass_count() noexcept { obs::reset_vector_passes(); }

namespace detail {

/// Elements per reduction block. Small inputs (the local test problems)
/// stay in one block; large inputs get one block per ~128 KiB with the
/// partials combined in fixed order.
inline constexpr index_t kReductionBlockElems = 16384;

/// Fixed-partition parallel driver for sums: block(begin, end) returns one
/// block's lane-canonical partial; partials are combined serially in block
/// order starting from 0.0. Block boundaries depend only on n, never on the
/// thread count. Shared by the dense kernels here and the fused SpMV+norm
/// driver in sparse/spmv_simd.cpp (which must associate identically).
template <typename BlockFn>
[[nodiscard]] double reduce_blocks_sum(index_t n, BlockFn&& block) {
  if (n <= kReductionBlockElems) return block(index_t{0}, n);
  const int blocks =
      static_cast<int>((n + kReductionBlockElems - 1) / kReductionBlockElems);
  const Partitioner part(n, blocks);
  std::vector<double> partial(static_cast<std::size_t>(blocks), 0.0);
  parallel_for(0, blocks, [&](index_t b) {
    const int blk = static_cast<int>(b);
    const index_t begin = part.offset(blk);
    partial[static_cast<std::size_t>(b)] =
        block(begin, begin + part.local_size(blk));
  });
  double acc = 0.0;
  for (const double v : partial) acc += v;
  return acc;
}

/// Same driver with a max combine (order-insensitive, but the fixed
/// partition keeps the parallel shape uniform with the sums).
template <typename BlockFn>
[[nodiscard]] double reduce_blocks_max(index_t n, BlockFn&& block) {
  if (n <= kReductionBlockElems) return block(index_t{0}, n);
  const int blocks =
      static_cast<int>((n + kReductionBlockElems - 1) / kReductionBlockElems);
  const Partitioner part(n, blocks);
  std::vector<double> partial(static_cast<std::size_t>(blocks), 0.0);
  parallel_for(0, blocks, [&](index_t b) {
    const int blk = static_cast<int>(b);
    const index_t begin = part.offset(blk);
    partial[static_cast<std::size_t>(b)] =
        block(begin, begin + part.local_size(blk));
  });
  double acc = 0.0;
  for (const double v : partial) acc = v > acc ? v : acc;
  return acc;
}

/// One block's lane-canonical sum of term(i) over [begin, end) in portable
/// code — the exact association every simd backend reproduces (and the
/// reference tests/test_simd.cpp pins them against).
template <typename Term>
[[nodiscard]] double lane_sum_block(index_t begin, index_t end, Term& term) {
  double lanes[simd::kReductionLanes] = {};
  index_t i = begin;
  for (; i + simd::kReductionLanes <= end; i += simd::kReductionLanes)
    for (int l = 0; l < simd::kReductionLanes; ++l) lanes[l] += term(i + l);
  for (int k = 0; i < end; ++i, ++k) lanes[k] += term(i);
  double s = lanes[0];
  for (int l = 1; l < simd::kReductionLanes; ++l) s += lanes[l];
  return s;
}

/// One block's lane-canonical max of term(i) over [begin, end).
template <typename Term>
[[nodiscard]] double lane_max_block(index_t begin, index_t end, Term& term) {
  double lanes[simd::kReductionLanes] = {};
  index_t i = begin;
  for (; i + simd::kReductionLanes <= end; i += simd::kReductionLanes)
    for (int l = 0; l < simd::kReductionLanes; ++l) {
      const double t = term(i + l);
      lanes[l] = t > lanes[l] ? t : lanes[l];
    }
  for (int k = 0; i < end; ++i, ++k) {
    const double t = term(i);
    lanes[k] = t > lanes[k] ? t : lanes[k];
  }
  double m = lanes[0];
  for (int l = 1; l < simd::kReductionLanes; ++l) m = lanes[l] > m ? lanes[l] : m;
  return m;
}

/// Lane-canonical deterministic reduction of term(i) over [0, n): bit-stable
/// for any thread count and consistent with the dispatched simd kernels.
template <typename Term>
[[nodiscard]] double deterministic_reduce_sum(index_t n, Term&& term) {
  return reduce_blocks_sum(
      n, [&](index_t b, index_t e) { return lane_sum_block(b, e, term); });
}

template <typename Term>
[[nodiscard]] double deterministic_reduce_max(index_t n, Term&& term) {
  return reduce_blocks_max(
      n, [&](index_t b, index_t e) { return lane_max_block(b, e, term); });
}

}  // namespace detail

/// y := x (sizes must match).
inline void copy(std::span<const double> x, std::span<double> y) {
  require(x.size() == y.size(), "copy: size mismatch");
  detail::count_passes(1);
  parallel_for(0, static_cast<index_t>(x.size()), [&](index_t i) { y[i] = x[i]; });
}

/// x := alpha.
inline void fill(std::span<double> x, double alpha) {
  detail::count_passes(1);
  parallel_for(0, static_cast<index_t>(x.size()), [&](index_t i) { x[i] = alpha; });
}

/// y := alpha*x + y.
inline void axpy(double alpha, std::span<const double> x, std::span<double> y) {
  require(x.size() == y.size(), "axpy: size mismatch");
  detail::count_passes(1);
  parallel_for(0, static_cast<index_t>(x.size()),
               [&](index_t i) { y[i] += alpha * x[i]; });
}

/// y := x + beta*y  (the "xpby" update used by CG's direction recurrence).
inline void xpby(std::span<const double> x, double beta, std::span<double> y) {
  require(x.size() == y.size(), "xpby: size mismatch");
  detail::count_passes(1);
  parallel_for(0, static_cast<index_t>(x.size()),
               [&](index_t i) { y[i] = x[i] + beta * y[i]; });
}

/// w := x + alpha*y.
inline void waxpy(std::span<const double> x, double alpha,
                  std::span<const double> y, std::span<double> w) {
  require(x.size() == y.size() && x.size() == w.size(), "waxpy: size mismatch");
  detail::count_passes(1);
  parallel_for(0, static_cast<index_t>(x.size()),
               [&](index_t i) { w[i] = x[i] + alpha * y[i]; });
}

/// x := alpha*x.
inline void scale(std::span<double> x, double alpha) {
  detail::count_passes(1);
  parallel_for(0, static_cast<index_t>(x.size()), [&](index_t i) { x[i] *= alpha; });
}

/// Dot product xᵀy (lane-canonical deterministic reduction: bit-stable for
/// any thread count and any simd::active_isa()).
[[nodiscard]] inline double dot(std::span<const double> x, std::span<const double> y) {
  require(x.size() == y.size(), "dot: size mismatch");
  detail::count_passes(1);
  const auto& o = simd::ops();
  const double* xp = x.data();
  const double* yp = y.data();
  return detail::reduce_blocks_sum(
      static_cast<index_t>(x.size()),
      [&](index_t b, index_t e) { return o.sum_mul(xp, yp, b, e); });
}

/// Euclidean norm ||x||₂ (lane-canonical deterministic reduction).
[[nodiscard]] inline double norm2(std::span<const double> x) {
  detail::count_passes(1);
  const auto& o = simd::ops();
  const double* xp = x.data();
  return std::sqrt(detail::reduce_blocks_sum(
      static_cast<index_t>(x.size()),
      [&](index_t b, index_t e) { return o.sum_sq(xp, b, e); }));
}

/// Max norm ||x||∞ (lane-canonical deterministic reduction).
[[nodiscard]] inline double norm_inf(std::span<const double> x) {
  detail::count_passes(1);
  const auto& o = simd::ops();
  const double* xp = x.data();
  return detail::reduce_blocks_max(
      static_cast<index_t>(x.size()),
      [&](index_t b, index_t e) { return o.max_abs(xp, b, e); });
}

/// Max pointwise absolute difference ||x − y||∞.
[[nodiscard]] inline double max_abs_diff(std::span<const double> x,
                                         std::span<const double> y) {
  require(x.size() == y.size(), "max_abs_diff: size mismatch");
  detail::count_passes(1);
  const auto& o = simd::ops();
  const double* xp = x.data();
  const double* yp = y.data();
  return detail::reduce_blocks_max(
      static_cast<index_t>(x.size()),
      [&](index_t b, index_t e) { return o.max_abs_diff(xp, yp, b, e); });
}

// ---------------------------------------------------------------------------
// Fused kernels.
//
// Each kernel below replaces a sequence of the primitive calls above with a
// single memory sweep while preserving *bit-identical* results:
//  - elementwise updates use exactly the expressions of the primitive
//    sequence they replace (same association, same sign handling), and
//  - reductions ride the same lane-canonical fixed partition as dot()/norm2(),
//    accumulated in the same per-lane and per-block serial order,
// so a solver rewritten onto them produces the same trajectory to the last
// bit at any thread count and ISA (pinned by tests/test_kernels.cpp and
// tests/test_simd.cpp).
// ---------------------------------------------------------------------------

/// Result of the fused CG inner update (see dot_axpy).
struct DotAxpyResult {
  double pq = 0.0;     ///< pᵀq, always computed.
  double alpha = 0.0;  ///< rho / pq (0 when !updated).
  double rr = 0.0;     ///< rᵀr after the update (0 when !updated).
  bool updated = false;  ///< False on breakdown (pq zero or non-finite).
};

/// CG's fused inner update: pq = pᵀq; if pq is finite and nonzero,
/// alpha = rho/pq, then one sweep performs x += alpha·p, r −= alpha·q and
/// accumulates rᵀr of the updated residual. Replaces
///   dot(p,q); axpy(alpha,p,x); axpy(-alpha,q,r); norm2(r)
/// (four sweeps) with two. On breakdown x and r are untouched, mirroring
/// the unfused code path that checked pq before updating.
[[nodiscard]] inline DotAxpyResult dot_axpy(std::span<const double> p,
                                            std::span<const double> q,
                                            double rho, std::span<double> x,
                                            std::span<double> r) {
  require(p.size() == q.size() && p.size() == x.size() && p.size() == r.size(),
          "dot_axpy: size mismatch");
  const auto n = static_cast<index_t>(p.size());
  const auto& o = simd::ops();
  DotAxpyResult res;
  detail::count_passes(1);
  res.pq = detail::reduce_blocks_sum(n, [&](index_t b, index_t e) {
    return o.sum_mul(p.data(), q.data(), b, e);
  });
  if (res.pq == 0.0 || !std::isfinite(res.pq)) return res;
  res.alpha = rho / res.pq;
  const double alpha = res.alpha;
  detail::count_passes(1);
  res.rr = detail::reduce_blocks_sum(n, [&](index_t b, index_t e) {
    return o.update_xr_sq(alpha, p.data(), q.data(), x.data(), r.data(), b, e);
  });
  res.updated = true;
  return res;
}

/// y += alpha·x fused with ||y||₂ of the updated y. One sweep instead of
/// axpy + norm2.
[[nodiscard]] inline double axpy_norm2(double alpha, std::span<const double> x,
                                       std::span<double> y) {
  require(x.size() == y.size(), "axpy_norm2: size mismatch");
  detail::count_passes(1);
  const auto& o = simd::ops();
  return std::sqrt(detail::reduce_blocks_sum(
      static_cast<index_t>(x.size()), [&](index_t b, index_t e) {
        return o.axpy_sq(alpha, x.data(), y.data(), b, e);
      }));
}

/// w := x + alpha·y fused with wᵀz of the result. `z` may alias `w` (the
/// waxpy_norm2 wrapper relies on it: each element is written before it is
/// read back); partial overlap is undefined. One sweep instead of
/// waxpy + dot.
[[nodiscard]] inline double waxpy_dot(std::span<const double> x, double alpha,
                                      std::span<const double> y,
                                      std::span<double> w,
                                      std::span<const double> z) {
  require(x.size() == y.size() && x.size() == w.size() && x.size() == z.size(),
          "waxpy_dot: size mismatch");
  detail::count_passes(1);
  const auto& o = simd::ops();
  return detail::reduce_blocks_sum(
      static_cast<index_t>(x.size()), [&](index_t b, index_t e) {
        return o.waxpy_mul(x.data(), alpha, y.data(), w.data(), z.data(), b, e);
      });
}

/// w := x + alpha·y fused with ||w||₂ (BiCGStab's s- and r-updates).
[[nodiscard]] inline double waxpy_norm2(std::span<const double> x, double alpha,
                                        std::span<const double> y,
                                        std::span<double> w) {
  return std::sqrt(waxpy_dot(x, alpha, y, w, w));
}

/// Two dot products sharing the left operand — xᵀy and xᵀz in one sweep.
/// Each result is accumulated in its own lane-canonical chain with exactly
/// dot()'s partition and order, so both match the two-call form bit-for-bit.
[[nodiscard]] inline std::pair<double, double> dot2(std::span<const double> x,
                                                    std::span<const double> y,
                                                    std::span<const double> z) {
  require(x.size() == y.size() && x.size() == z.size(), "dot2: size mismatch");
  const auto n = static_cast<index_t>(x.size());
  detail::count_passes(1);
  const auto& o = simd::ops();
  if (n <= detail::kReductionBlockElems) {
    double a = 0.0, b = 0.0;
    o.sum_mul2(x.data(), y.data(), z.data(), 0, n, &a, &b);
    return {a, b};
  }
  const int blocks = static_cast<int>((n + detail::kReductionBlockElems - 1) /
                                      detail::kReductionBlockElems);
  const Partitioner part(n, blocks);
  std::vector<double> pa(static_cast<std::size_t>(blocks), 0.0);
  std::vector<double> pb(static_cast<std::size_t>(blocks), 0.0);
  parallel_for(0, blocks, [&](index_t blk) {
    const int k = static_cast<int>(blk);
    const index_t begin = part.offset(k);
    o.sum_mul2(x.data(), y.data(), z.data(), begin, begin + part.local_size(k),
               &pa[static_cast<std::size_t>(blk)],
               &pb[static_cast<std::size_t>(blk)]);
  });
  double a = 0.0, b = 0.0;
  for (std::size_t k = 0; k < pa.size(); ++k) {
    a += pa[k];
    b += pb[k];
  }
  return {a, b};
}

/// z += alpha·x + beta·y with the association of the two-call form
/// axpy(alpha,x,z); axpy(beta,y,z): each element is (z + alpha·x) + beta·y.
inline void axpy2(double alpha, std::span<const double> x, double beta,
                  std::span<const double> y, std::span<double> z) {
  require(x.size() == y.size() && x.size() == z.size(), "axpy2: size mismatch");
  detail::count_passes(1);
  parallel_for(0, static_cast<index_t>(x.size()), [&](index_t i) {
    const double t = z[i] + alpha * x[i];
    z[i] = t + beta * y[i];
  });
}

/// axpy2 fused with ||z||₂ of the result (MINRES's Lanczos update
/// v_new −= alpha·v + beta·v_old followed by norm2).
[[nodiscard]] inline double axpy2_norm2(double alpha, std::span<const double> x,
                                        double beta, std::span<const double> y,
                                        std::span<double> z) {
  require(x.size() == y.size() && x.size() == z.size(),
          "axpy2_norm2: size mismatch");
  detail::count_passes(1);
  const auto& o = simd::ops();
  return std::sqrt(detail::reduce_blocks_sum(
      static_cast<index_t>(x.size()), [&](index_t b, index_t e) {
        return o.axpy2_sq(alpha, x.data(), beta, y.data(), z.data(), b, e);
      }));
}

/// w := ((v + alpha·x) + beta·y) · s — MINRES's direction update
/// d_new = (v − rho3·d_old − rho2·d)/rho1 in one sweep instead of
/// copy + axpy + axpy + scale (pass s = 1/rho1, matching scale()'s
/// multiply-by-reciprocal).
inline void waxpy2_scale(std::span<const double> v, double alpha,
                         std::span<const double> x, double beta,
                         std::span<const double> y, double s,
                         std::span<double> w) {
  require(v.size() == x.size() && v.size() == y.size() && v.size() == w.size(),
          "waxpy2_scale: size mismatch");
  detail::count_passes(1);
  parallel_for(0, static_cast<index_t>(v.size()), [&](index_t i) {
    const double t = v[i] + alpha * x[i];
    w[i] = (t + beta * y[i]) * s;
  });
}

/// x += d ⊙ r (elementwise-scaled update; Jacobi's x += D⁻¹·r).
inline void diag_axpy(std::span<const double> d, std::span<const double> r,
                      std::span<double> x) {
  require(d.size() == r.size() && d.size() == x.size(),
          "diag_axpy: size mismatch");
  detail::count_passes(1);
  parallel_for(0, static_cast<index_t>(d.size()),
               [&](index_t i) { x[i] += d[i] * r[i]; });
}

/// p := r + beta·(p + alpha·v) with the association of
/// axpy(alpha,v,p); xpby(r,beta,p) — BiCGStab's direction update
/// p = r + beta·(p − omega·v) in one sweep instead of two.
inline void axpy_xpby(double alpha, std::span<const double> v,
                      std::span<const double> r, double beta,
                      std::span<double> p) {
  require(v.size() == r.size() && v.size() == p.size(),
          "axpy_xpby: size mismatch");
  detail::count_passes(1);
  parallel_for(0, static_cast<index_t>(v.size()), [&](index_t i) {
    const double t = p[i] + alpha * v[i];
    p[i] = r[i] + beta * t;
  });
}

}  // namespace lck

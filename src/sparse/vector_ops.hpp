#pragma once
/// \file vector_ops.hpp
/// \brief Dense vector kernels (BLAS-1 style) used by all iterative solvers.
///
/// All kernels are OpenMP-parallel and operate on std::vector<double> /
/// std::span<double> so that solver code reads like the algorithm statements
/// in the paper (Algorithm 1/2).
///
/// The reductions (dot, norm2, norm_inf) use a *deterministic fixed
/// partition*: the range is split into blocks whose boundaries depend only
/// on the length (via Partitioner), per-block partial results are computed
/// independently (in parallel), and the partials are combined serially in
/// block order. The result is therefore bit-stable regardless of the thread
/// count — an OpenMP `reduction(+)` clause, by contrast, reassociates the
/// sum differently per thread count, which would make solver trajectories
/// (and the virtual-clock results built on them) irreproducible across
/// machines.

#include <cmath>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "common/types.hpp"
#include "obs/pass_counter.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/partitioner.hpp"

namespace lck {

using Vector = std::vector<double>;

namespace detail {

/// Instrumentation: every kernel in this file adds the number of full-vector
/// data passes it performs (one relaxed atomic add per *call*, not per
/// element, so the cost is invisible next to the sweep itself). Tests and
/// benches use the counter to assert that the fused per-iteration solver
/// bodies really cut the sweep count, instead of trusting a comment. The
/// counter itself lives in obs/pass_counter.hpp so the observability layer
/// can sample it into the metrics registry.
inline void count_passes(std::uint64_t n) noexcept {
  obs::add_vector_passes(n);
}

}  // namespace detail

/// Total full-vector passes performed by vector_ops kernels so far.
/// (Shim over obs::vector_passes(), kept for existing callers/tests.)
[[nodiscard]] inline std::uint64_t vector_pass_count() noexcept {
  return obs::vector_passes();
}

inline void reset_vector_pass_count() noexcept { obs::reset_vector_passes(); }

namespace detail {

/// Elements per reduction block. Small inputs (the local test problems)
/// stay in one block, which reproduces the plain serial sum bit-for-bit;
/// large inputs get one block per ~128 KiB with the partials combined in
/// fixed order.
inline constexpr index_t kReductionBlockElems = 16384;

/// Deterministic reduction of term(i) over [0, n): fixed partition (block
/// boundaries depend only on n), parallel per-block partials, serial
/// in-order combine of accumulator and term/partial values (starting from
/// 0.0 at every level, so a ≤-one-block input reproduces the plain serial
/// loop bit-for-bit).
template <typename Term, typename Combine>
[[nodiscard]] double deterministic_reduce(index_t n, Term&& term,
                                          Combine&& combine) {
  if (n <= kReductionBlockElems) {
    double acc = 0.0;
    for (index_t i = 0; i < n; ++i) acc = combine(acc, term(i));
    return acc;
  }
  const int blocks =
      static_cast<int>((n + kReductionBlockElems - 1) / kReductionBlockElems);
  const Partitioner part(n, blocks);
  std::vector<double> partial(static_cast<std::size_t>(blocks), 0.0);
  parallel_for(0, blocks, [&](index_t b) {
    const int blk = static_cast<int>(b);
    const index_t begin = part.offset(blk);
    const index_t end = begin + part.local_size(blk);
    double acc = 0.0;
    for (index_t i = begin; i < end; ++i) acc = combine(acc, term(i));
    partial[static_cast<std::size_t>(b)] = acc;
  });
  double acc = 0.0;
  for (const double v : partial) acc = combine(acc, v);
  return acc;
}

template <typename Term>
[[nodiscard]] double deterministic_reduce_sum(index_t n, Term&& term) {
  return deterministic_reduce(n, std::forward<Term>(term),
                              [](double a, double v) { return a + v; });
}

/// Max is order-insensitive, but the fixed partition keeps the parallel
/// shape (and any future tweak to it) uniform with the sums.
template <typename Term>
[[nodiscard]] double deterministic_reduce_max(index_t n, Term&& term) {
  return deterministic_reduce(n, std::forward<Term>(term),
                              [](double a, double v) { return v > a ? v : a; });
}

}  // namespace detail

/// y := x (sizes must match).
inline void copy(std::span<const double> x, std::span<double> y) {
  require(x.size() == y.size(), "copy: size mismatch");
  detail::count_passes(1);
  parallel_for(0, static_cast<index_t>(x.size()), [&](index_t i) { y[i] = x[i]; });
}

/// x := alpha.
inline void fill(std::span<double> x, double alpha) {
  detail::count_passes(1);
  parallel_for(0, static_cast<index_t>(x.size()), [&](index_t i) { x[i] = alpha; });
}

/// y := alpha*x + y.
inline void axpy(double alpha, std::span<const double> x, std::span<double> y) {
  require(x.size() == y.size(), "axpy: size mismatch");
  detail::count_passes(1);
  parallel_for(0, static_cast<index_t>(x.size()),
               [&](index_t i) { y[i] += alpha * x[i]; });
}

/// y := x + beta*y  (the "xpby" update used by CG's direction recurrence).
inline void xpby(std::span<const double> x, double beta, std::span<double> y) {
  require(x.size() == y.size(), "xpby: size mismatch");
  detail::count_passes(1);
  parallel_for(0, static_cast<index_t>(x.size()),
               [&](index_t i) { y[i] = x[i] + beta * y[i]; });
}

/// w := x + alpha*y.
inline void waxpy(std::span<const double> x, double alpha,
                  std::span<const double> y, std::span<double> w) {
  require(x.size() == y.size() && x.size() == w.size(), "waxpy: size mismatch");
  detail::count_passes(1);
  parallel_for(0, static_cast<index_t>(x.size()),
               [&](index_t i) { w[i] = x[i] + alpha * y[i]; });
}

/// x := alpha*x.
inline void scale(std::span<double> x, double alpha) {
  detail::count_passes(1);
  parallel_for(0, static_cast<index_t>(x.size()), [&](index_t i) { x[i] *= alpha; });
}

/// Dot product xᵀy (deterministic fixed-partition reduction: bit-stable
/// for any thread count).
[[nodiscard]] inline double dot(std::span<const double> x, std::span<const double> y) {
  require(x.size() == y.size(), "dot: size mismatch");
  detail::count_passes(1);
  return detail::deterministic_reduce_sum(
      static_cast<index_t>(x.size()), [&](index_t i) { return x[i] * y[i]; });
}

/// Euclidean norm ||x||₂ (deterministic fixed-partition reduction).
[[nodiscard]] inline double norm2(std::span<const double> x) {
  detail::count_passes(1);
  return std::sqrt(detail::deterministic_reduce_sum(
      static_cast<index_t>(x.size()), [&](index_t i) { return x[i] * x[i]; }));
}

/// Max norm ||x||∞ (deterministic fixed-partition reduction).
[[nodiscard]] inline double norm_inf(std::span<const double> x) {
  detail::count_passes(1);
  return detail::deterministic_reduce_max(
      static_cast<index_t>(x.size()), [&](index_t i) { return std::fabs(x[i]); });
}

/// Max pointwise absolute difference ||x − y||∞.
[[nodiscard]] inline double max_abs_diff(std::span<const double> x,
                                         std::span<const double> y) {
  require(x.size() == y.size(), "max_abs_diff: size mismatch");
  detail::count_passes(1);
  return detail::deterministic_reduce_max(
      static_cast<index_t>(x.size()),
      [&](index_t i) { return std::fabs(x[i] - y[i]); });
}

// ---------------------------------------------------------------------------
// Fused kernels.
//
// Each kernel below replaces a sequence of the primitive calls above with a
// single memory sweep while preserving *bit-identical* results:
//  - elementwise updates use exactly the expressions of the primitive
//    sequence they replace (same association, same sign handling), and
//  - reductions ride the same deterministic fixed partition as dot()/norm2(),
//    accumulated in the same per-block serial order,
// so a solver rewritten onto them produces the same trajectory to the last
// bit at any thread count (pinned by tests/test_kernels.cpp).
// ---------------------------------------------------------------------------

/// Result of the fused CG inner update (see dot_axpy).
struct DotAxpyResult {
  double pq = 0.0;     ///< pᵀq, always computed.
  double alpha = 0.0;  ///< rho / pq (0 when !updated).
  double rr = 0.0;     ///< rᵀr after the update (0 when !updated).
  bool updated = false;  ///< False on breakdown (pq zero or non-finite).
};

/// CG's fused inner update: pq = pᵀq; if pq is finite and nonzero,
/// alpha = rho/pq, then one sweep performs x += alpha·p, r −= alpha·q and
/// accumulates rᵀr of the updated residual. Replaces
///   dot(p,q); axpy(alpha,p,x); axpy(-alpha,q,r); norm2(r)
/// (four sweeps) with two. On breakdown x and r are untouched, mirroring
/// the unfused code path that checked pq before updating.
[[nodiscard]] inline DotAxpyResult dot_axpy(std::span<const double> p,
                                            std::span<const double> q,
                                            double rho, std::span<double> x,
                                            std::span<double> r) {
  require(p.size() == q.size() && p.size() == x.size() && p.size() == r.size(),
          "dot_axpy: size mismatch");
  const auto n = static_cast<index_t>(p.size());
  DotAxpyResult res;
  detail::count_passes(1);
  res.pq = detail::deterministic_reduce_sum(
      n, [&](index_t i) { return p[i] * q[i]; });
  if (res.pq == 0.0 || !std::isfinite(res.pq)) return res;
  res.alpha = rho / res.pq;
  const double alpha = res.alpha;
  const double nalpha = -alpha;  // exact negation: r[i] += (-alpha)*q[i]
  detail::count_passes(1);
  res.rr = detail::deterministic_reduce_sum(n, [&](index_t i) {
    x[i] += alpha * p[i];
    r[i] += nalpha * q[i];
    return r[i] * r[i];
  });
  res.updated = true;
  return res;
}

/// y += alpha·x fused with ||y||₂ of the updated y. One sweep instead of
/// axpy + norm2.
[[nodiscard]] inline double axpy_norm2(double alpha, std::span<const double> x,
                                       std::span<double> y) {
  require(x.size() == y.size(), "axpy_norm2: size mismatch");
  detail::count_passes(1);
  return std::sqrt(detail::deterministic_reduce_sum(
      static_cast<index_t>(x.size()), [&](index_t i) {
        y[i] += alpha * x[i];
        return y[i] * y[i];
      }));
}

/// w := x + alpha·y fused with wᵀz of the result. `z` may alias `w` (the
/// waxpy_norm2 wrapper relies on it: each element is written before it is
/// read back). One sweep instead of waxpy + dot.
[[nodiscard]] inline double waxpy_dot(std::span<const double> x, double alpha,
                                      std::span<const double> y,
                                      std::span<double> w,
                                      std::span<const double> z) {
  require(x.size() == y.size() && x.size() == w.size() && x.size() == z.size(),
          "waxpy_dot: size mismatch");
  detail::count_passes(1);
  return detail::deterministic_reduce_sum(
      static_cast<index_t>(x.size()), [&](index_t i) {
        w[i] = x[i] + alpha * y[i];
        return w[i] * z[i];
      });
}

/// w := x + alpha·y fused with ||w||₂ (BiCGStab's s- and r-updates).
[[nodiscard]] inline double waxpy_norm2(std::span<const double> x, double alpha,
                                        std::span<const double> y,
                                        std::span<double> w) {
  return std::sqrt(waxpy_dot(x, alpha, y, w, w));
}

/// Two dot products sharing the left operand — xᵀy and xᵀz in one sweep.
/// Each result is accumulated in its own partial chain with exactly dot()'s
/// partition and order, so both match the two-call form bit-for-bit.
[[nodiscard]] inline std::pair<double, double> dot2(std::span<const double> x,
                                                    std::span<const double> y,
                                                    std::span<const double> z) {
  require(x.size() == y.size() && x.size() == z.size(), "dot2: size mismatch");
  const auto n = static_cast<index_t>(x.size());
  detail::count_passes(1);
  if (n <= detail::kReductionBlockElems) {
    double a = 0.0, b = 0.0;
    for (index_t i = 0; i < n; ++i) {
      a += x[i] * y[i];
      b += x[i] * z[i];
    }
    return {a, b};
  }
  const int blocks = static_cast<int>((n + detail::kReductionBlockElems - 1) /
                                      detail::kReductionBlockElems);
  const Partitioner part(n, blocks);
  std::vector<double> pa(static_cast<std::size_t>(blocks), 0.0);
  std::vector<double> pb(static_cast<std::size_t>(blocks), 0.0);
  parallel_for(0, blocks, [&](index_t blk) {
    const int k = static_cast<int>(blk);
    const index_t begin = part.offset(k);
    const index_t end = begin + part.local_size(k);
    double a = 0.0, b = 0.0;
    for (index_t i = begin; i < end; ++i) {
      a += x[i] * y[i];
      b += x[i] * z[i];
    }
    pa[static_cast<std::size_t>(blk)] = a;
    pb[static_cast<std::size_t>(blk)] = b;
  });
  double a = 0.0, b = 0.0;
  for (std::size_t k = 0; k < pa.size(); ++k) {
    a += pa[k];
    b += pb[k];
  }
  return {a, b};
}

/// z += alpha·x + beta·y with the association of the two-call form
/// axpy(alpha,x,z); axpy(beta,y,z): each element is (z + alpha·x) + beta·y.
inline void axpy2(double alpha, std::span<const double> x, double beta,
                  std::span<const double> y, std::span<double> z) {
  require(x.size() == y.size() && x.size() == z.size(), "axpy2: size mismatch");
  detail::count_passes(1);
  parallel_for(0, static_cast<index_t>(x.size()), [&](index_t i) {
    const double t = z[i] + alpha * x[i];
    z[i] = t + beta * y[i];
  });
}

/// axpy2 fused with ||z||₂ of the result (MINRES's Lanczos update
/// v_new −= alpha·v + beta·v_old followed by norm2).
[[nodiscard]] inline double axpy2_norm2(double alpha, std::span<const double> x,
                                        double beta, std::span<const double> y,
                                        std::span<double> z) {
  require(x.size() == y.size() && x.size() == z.size(),
          "axpy2_norm2: size mismatch");
  detail::count_passes(1);
  return std::sqrt(detail::deterministic_reduce_sum(
      static_cast<index_t>(x.size()), [&](index_t i) {
        const double t = z[i] + alpha * x[i];
        const double t2 = t + beta * y[i];
        z[i] = t2;
        return t2 * t2;
      }));
}

/// w := ((v + alpha·x) + beta·y) · s — MINRES's direction update
/// d_new = (v − rho3·d_old − rho2·d)/rho1 in one sweep instead of
/// copy + axpy + axpy + scale (pass s = 1/rho1, matching scale()'s
/// multiply-by-reciprocal).
inline void waxpy2_scale(std::span<const double> v, double alpha,
                         std::span<const double> x, double beta,
                         std::span<const double> y, double s,
                         std::span<double> w) {
  require(v.size() == x.size() && v.size() == y.size() && v.size() == w.size(),
          "waxpy2_scale: size mismatch");
  detail::count_passes(1);
  parallel_for(0, static_cast<index_t>(v.size()), [&](index_t i) {
    const double t = v[i] + alpha * x[i];
    w[i] = (t + beta * y[i]) * s;
  });
}

/// x += d ⊙ r (elementwise-scaled update; Jacobi's x += D⁻¹·r).
inline void diag_axpy(std::span<const double> d, std::span<const double> r,
                      std::span<double> x) {
  require(d.size() == r.size() && d.size() == x.size(),
          "diag_axpy: size mismatch");
  detail::count_passes(1);
  parallel_for(0, static_cast<index_t>(d.size()),
               [&](index_t i) { x[i] += d[i] * r[i]; });
}

/// p := r + beta·(p + alpha·v) with the association of
/// axpy(alpha,v,p); xpby(r,beta,p) — BiCGStab's direction update
/// p = r + beta·(p − omega·v) in one sweep instead of two.
inline void axpy_xpby(double alpha, std::span<const double> v,
                      std::span<const double> r, double beta,
                      std::span<double> p) {
  require(v.size() == r.size() && v.size() == p.size(),
          "axpy_xpby: size mismatch");
  detail::count_passes(1);
  parallel_for(0, static_cast<index_t>(v.size()), [&](index_t i) {
    const double t = p[i] + alpha * v[i];
    p[i] = r[i] + beta * t;
  });
}

}  // namespace lck

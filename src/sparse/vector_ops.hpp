#pragma once
/// \file vector_ops.hpp
/// \brief Dense vector kernels (BLAS-1 style) used by all iterative solvers.
///
/// All kernels are OpenMP-parallel and operate on std::vector<double> /
/// std::span<double> so that solver code reads like the algorithm statements
/// in the paper (Algorithm 1/2).
///
/// The reductions (dot, norm2, norm_inf) use a *deterministic fixed
/// partition*: the range is split into blocks whose boundaries depend only
/// on the length (via Partitioner), per-block partial results are computed
/// independently (in parallel), and the partials are combined serially in
/// block order. The result is therefore bit-stable regardless of the thread
/// count — an OpenMP `reduction(+)` clause, by contrast, reassociates the
/// sum differently per thread count, which would make solver trajectories
/// (and the virtual-clock results built on them) irreproducible across
/// machines.

#include <cmath>
#include <span>
#include <utility>
#include <vector>

#include "common/types.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/partitioner.hpp"

namespace lck {

using Vector = std::vector<double>;

namespace detail {

/// Elements per reduction block. Small inputs (the local test problems)
/// stay in one block, which reproduces the plain serial sum bit-for-bit;
/// large inputs get one block per ~128 KiB with the partials combined in
/// fixed order.
inline constexpr index_t kReductionBlockElems = 16384;

/// Deterministic reduction of term(i) over [0, n): fixed partition (block
/// boundaries depend only on n), parallel per-block partials, serial
/// in-order combine of accumulator and term/partial values (starting from
/// 0.0 at every level, so a ≤-one-block input reproduces the plain serial
/// loop bit-for-bit).
template <typename Term, typename Combine>
[[nodiscard]] double deterministic_reduce(index_t n, Term&& term,
                                          Combine&& combine) {
  if (n <= kReductionBlockElems) {
    double acc = 0.0;
    for (index_t i = 0; i < n; ++i) acc = combine(acc, term(i));
    return acc;
  }
  const int blocks =
      static_cast<int>((n + kReductionBlockElems - 1) / kReductionBlockElems);
  const Partitioner part(n, blocks);
  std::vector<double> partial(static_cast<std::size_t>(blocks), 0.0);
  parallel_for(0, blocks, [&](index_t b) {
    const int blk = static_cast<int>(b);
    const index_t begin = part.offset(blk);
    const index_t end = begin + part.local_size(blk);
    double acc = 0.0;
    for (index_t i = begin; i < end; ++i) acc = combine(acc, term(i));
    partial[static_cast<std::size_t>(b)] = acc;
  });
  double acc = 0.0;
  for (const double v : partial) acc = combine(acc, v);
  return acc;
}

template <typename Term>
[[nodiscard]] double deterministic_reduce_sum(index_t n, Term&& term) {
  return deterministic_reduce(n, std::forward<Term>(term),
                              [](double a, double v) { return a + v; });
}

/// Max is order-insensitive, but the fixed partition keeps the parallel
/// shape (and any future tweak to it) uniform with the sums.
template <typename Term>
[[nodiscard]] double deterministic_reduce_max(index_t n, Term&& term) {
  return deterministic_reduce(n, std::forward<Term>(term),
                              [](double a, double v) { return v > a ? v : a; });
}

}  // namespace detail

/// y := x (sizes must match).
inline void copy(std::span<const double> x, std::span<double> y) {
  require(x.size() == y.size(), "copy: size mismatch");
  parallel_for(0, static_cast<index_t>(x.size()), [&](index_t i) { y[i] = x[i]; });
}

/// x := alpha.
inline void fill(std::span<double> x, double alpha) {
  parallel_for(0, static_cast<index_t>(x.size()), [&](index_t i) { x[i] = alpha; });
}

/// y := alpha*x + y.
inline void axpy(double alpha, std::span<const double> x, std::span<double> y) {
  require(x.size() == y.size(), "axpy: size mismatch");
  parallel_for(0, static_cast<index_t>(x.size()),
               [&](index_t i) { y[i] += alpha * x[i]; });
}

/// y := x + beta*y  (the "xpby" update used by CG's direction recurrence).
inline void xpby(std::span<const double> x, double beta, std::span<double> y) {
  require(x.size() == y.size(), "xpby: size mismatch");
  parallel_for(0, static_cast<index_t>(x.size()),
               [&](index_t i) { y[i] = x[i] + beta * y[i]; });
}

/// w := x + alpha*y.
inline void waxpy(std::span<const double> x, double alpha,
                  std::span<const double> y, std::span<double> w) {
  require(x.size() == y.size() && x.size() == w.size(), "waxpy: size mismatch");
  parallel_for(0, static_cast<index_t>(x.size()),
               [&](index_t i) { w[i] = x[i] + alpha * y[i]; });
}

/// x := alpha*x.
inline void scale(std::span<double> x, double alpha) {
  parallel_for(0, static_cast<index_t>(x.size()), [&](index_t i) { x[i] *= alpha; });
}

/// Dot product xᵀy (deterministic fixed-partition reduction: bit-stable
/// for any thread count).
[[nodiscard]] inline double dot(std::span<const double> x, std::span<const double> y) {
  require(x.size() == y.size(), "dot: size mismatch");
  return detail::deterministic_reduce_sum(
      static_cast<index_t>(x.size()), [&](index_t i) { return x[i] * y[i]; });
}

/// Euclidean norm ||x||₂ (deterministic fixed-partition reduction).
[[nodiscard]] inline double norm2(std::span<const double> x) {
  return std::sqrt(detail::deterministic_reduce_sum(
      static_cast<index_t>(x.size()), [&](index_t i) { return x[i] * x[i]; }));
}

/// Max norm ||x||∞ (deterministic fixed-partition reduction).
[[nodiscard]] inline double norm_inf(std::span<const double> x) {
  return detail::deterministic_reduce_max(
      static_cast<index_t>(x.size()), [&](index_t i) { return std::fabs(x[i]); });
}

/// Max pointwise absolute difference ||x − y||∞.
[[nodiscard]] inline double max_abs_diff(std::span<const double> x,
                                         std::span<const double> y) {
  require(x.size() == y.size(), "max_abs_diff: size mismatch");
  return detail::deterministic_reduce_max(
      static_cast<index_t>(x.size()),
      [&](index_t i) { return std::fabs(x[i] - y[i]); });
}

}  // namespace lck

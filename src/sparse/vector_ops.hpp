#pragma once
/// \file vector_ops.hpp
/// \brief Dense vector kernels (BLAS-1 style) used by all iterative solvers.
///
/// All kernels are OpenMP-parallel and operate on std::vector<double> /
/// std::span<double> so that solver code reads like the algorithm statements
/// in the paper (Algorithm 1/2).

#include <cmath>
#include <span>
#include <vector>

#include "common/types.hpp"
#include "parallel/parallel_for.hpp"

namespace lck {

using Vector = std::vector<double>;

/// y := x (sizes must match).
inline void copy(std::span<const double> x, std::span<double> y) {
  require(x.size() == y.size(), "copy: size mismatch");
  parallel_for(0, static_cast<index_t>(x.size()), [&](index_t i) { y[i] = x[i]; });
}

/// x := alpha.
inline void fill(std::span<double> x, double alpha) {
  parallel_for(0, static_cast<index_t>(x.size()), [&](index_t i) { x[i] = alpha; });
}

/// y := alpha*x + y.
inline void axpy(double alpha, std::span<const double> x, std::span<double> y) {
  require(x.size() == y.size(), "axpy: size mismatch");
  parallel_for(0, static_cast<index_t>(x.size()),
               [&](index_t i) { y[i] += alpha * x[i]; });
}

/// y := x + beta*y  (the "xpby" update used by CG's direction recurrence).
inline void xpby(std::span<const double> x, double beta, std::span<double> y) {
  require(x.size() == y.size(), "xpby: size mismatch");
  parallel_for(0, static_cast<index_t>(x.size()),
               [&](index_t i) { y[i] = x[i] + beta * y[i]; });
}

/// w := x + alpha*y.
inline void waxpy(std::span<const double> x, double alpha,
                  std::span<const double> y, std::span<double> w) {
  require(x.size() == y.size() && x.size() == w.size(), "waxpy: size mismatch");
  parallel_for(0, static_cast<index_t>(x.size()),
               [&](index_t i) { w[i] = x[i] + alpha * y[i]; });
}

/// x := alpha*x.
inline void scale(std::span<double> x, double alpha) {
  parallel_for(0, static_cast<index_t>(x.size()), [&](index_t i) { x[i] *= alpha; });
}

/// Dot product xᵀy.
[[nodiscard]] inline double dot(std::span<const double> x, std::span<const double> y) {
  require(x.size() == y.size(), "dot: size mismatch");
  return parallel_reduce_sum(0, static_cast<index_t>(x.size()),
                             [&](index_t i) { return x[i] * y[i]; });
}

/// Euclidean norm ||x||₂.
[[nodiscard]] inline double norm2(std::span<const double> x) {
  return std::sqrt(parallel_reduce_sum(0, static_cast<index_t>(x.size()),
                                       [&](index_t i) { return x[i] * x[i]; }));
}

/// Max norm ||x||∞.
[[nodiscard]] inline double norm_inf(std::span<const double> x) {
  return parallel_reduce_max(0, static_cast<index_t>(x.size()),
                             [&](index_t i) { return std::fabs(x[i]); });
}

/// Max pointwise absolute difference ||x − y||∞.
[[nodiscard]] inline double max_abs_diff(std::span<const double> x,
                                         std::span<const double> y) {
  require(x.size() == y.size(), "max_abs_diff: size mismatch");
  return parallel_reduce_max(0, static_cast<index_t>(x.size()),
                             [&](index_t i) { return std::fabs(x[i] - y[i]); });
}

}  // namespace lck

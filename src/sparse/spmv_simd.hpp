#pragma once
/// \file spmv_simd.hpp
/// \brief Runtime-dispatched CSR SpMV drivers built on the simd kernel
///        engine (common/simd.hpp): blocked multiply/residual under
///        CsrMatrix's nnz-balanced row plan, and the fused
///        residual + squared-norm pass the solvers' convergence checks use.
///
/// Bit-stability: per-row dots follow the lane-canonical row contract
/// (serial association below simd::kSimdRowMinNnz nonzeros, 8-lane
/// canonical above it), so every backend produces identical y. The fused
/// pass parallelizes over the *reduction* partition (16Ki rows per block,
/// boundaries depending only on the row count) instead of the SpMV nnz
/// plan, and accumulates y[r]² into lane (r − block_begin) mod 8 — exactly
/// the association of residual() followed by norm2(), which is what makes
/// the fusion legal at all (the pre-SIMD kernels couldn't fuse: the nnz
/// plan's block boundaries move when values change, so a sum over them
/// would not be a fixed partition of the rows).

#include <span>
#include <vector>

#include "common/types.hpp"

namespace lck::spmv {

/// y[r] = (A·x)[r] over the row plan's blocks (block b covers rows
/// [block_rows[b], block_rows[b+1])), dispatched to the active ISA.
void multiply_blocked(const index_t* row_ptr, const index_t* col_idx,
                      const double* values, const double* x, double* y,
                      std::span<const index_t> block_rows);

/// y[r] = b[r] − (A·x)[r] over the row plan's blocks.
void residual_blocked(const index_t* row_ptr, const index_t* col_idx,
                      const double* values, const double* b, const double* x,
                      double* y, std::span<const index_t> block_rows);

/// Fused y = b − A·x and Σ y[r]² in one sweep, parallelized over the
/// lane-canonical reduction partition of the rows. Returns the squared
/// norm; bit-identical to residual_blocked followed by a dispatched
/// sum-of-squares over y.
[[nodiscard]] double residual_norm2_sq(const index_t* row_ptr,
                                       const index_t* col_idx,
                                       const double* values, const double* b,
                                       const double* x, double* y,
                                       index_t rows);

/// One row's dot with the scalar backend (the rowwise reference kernels in
/// CsrMatrix use it, so reference == dispatched is a real cross-ISA check).
[[nodiscard]] double row_dot_scalar(const index_t* col, const double* val,
                                    index_t len, const double* x);

}  // namespace lck::spmv

#include "sparse/csr.hpp"

#include <cmath>

namespace lck {

void CsrMatrix::validate() const {
  require(rows_ >= 0 && cols_ >= 0, "csr: negative dimensions");
  require(static_cast<index_t>(row_ptr_.size()) == rows_ + 1,
          "csr: row_ptr size mismatch");
  require(row_ptr_.front() == 0, "csr: row_ptr must start at 0");
  require(row_ptr_.back() == static_cast<index_t>(col_idx_.size()),
          "csr: row_ptr must end at nnz");
  require(col_idx_.size() == values_.size(), "csr: col/value size mismatch");
  for (index_t r = 0; r < rows_; ++r) {
    require(row_ptr_[r] <= row_ptr_[r + 1], "csr: row_ptr not monotonic");
    for (index_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      require(col_idx_[k] >= 0 && col_idx_[k] < cols_,
              "csr: column index out of range");
      if (k > row_ptr_[r])
        require(col_idx_[k - 1] < col_idx_[k], "csr: columns not ascending");
    }
  }
}

CsrMatrix CsrMatrix::transpose() const {
  std::vector<index_t> t_row_ptr(static_cast<std::size_t>(cols_) + 1, 0);
  for (const index_t c : col_idx_) ++t_row_ptr[c + 1];
  for (index_t c = 0; c < cols_; ++c) t_row_ptr[c + 1] += t_row_ptr[c];

  std::vector<index_t> t_col(col_idx_.size());
  std::vector<double> t_val(values_.size());
  std::vector<index_t> next(t_row_ptr.begin(), t_row_ptr.end() - 1);
  for (index_t r = 0; r < rows_; ++r) {
    for (index_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      const index_t c = col_idx_[k];
      const index_t slot = next[c]++;
      t_col[slot] = r;   // rows visited in order => columns ascend per row
      t_val[slot] = values_[k];
    }
  }
  return CsrMatrix(cols_, rows_, std::move(t_row_ptr), std::move(t_col),
                   std::move(t_val));
}

bool CsrMatrix::is_symmetric(double tol) const {
  if (rows_ != cols_) return false;
  const CsrMatrix t = transpose();
  if (t.nnz() != nnz()) return false;
  for (index_t r = 0; r < rows_; ++r) {
    if (t.row_ptr_[r] != row_ptr_[r]) return false;
    for (index_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      if (t.col_idx_[k] != col_idx_[k]) return false;
      if (std::fabs(t.values_[k] - values_[k]) > tol) return false;
    }
  }
  return true;
}

}  // namespace lck

#include "sparse/csr.hpp"

#include <cmath>

#include "sparse/spmv_simd.hpp"

namespace lck {

void CsrMatrix::build_plan() {
  block_rows_.assign(1, 0);
  block_rows_.reserve(static_cast<std::size_t>(
                          nnz() / kSpmvBlockNnz + rows_ / kSpmvBlockMaxRows) +
                      2);
  index_t r = 0;
  while (r < rows_) {
    index_t end = r + 1;  // a block always takes at least one row
    while (end < rows_ && end - r < kSpmvBlockMaxRows &&
           row_ptr_[end + 1] - row_ptr_[r] <= kSpmvBlockNnz)
      ++end;
    block_rows_.push_back(end);
    r = end;
  }
}

void CsrMatrix::multiply(std::span<const double> x, std::span<double> y) const {
  require(static_cast<index_t>(x.size()) == cols_, "spmv: x size mismatch");
  require(static_cast<index_t>(y.size()) == rows_, "spmv: y size mismatch");
  spmv::multiply_blocked(row_ptr_.data(), col_idx_.data(), values_.data(),
                         x.data(), y.data(), block_rows_);
}

void CsrMatrix::residual(std::span<const double> b, std::span<const double> x,
                         std::span<double> y) const {
  require(static_cast<index_t>(b.size()) == rows_, "residual: b size mismatch");
  require(static_cast<index_t>(x.size()) == cols_, "residual: x size mismatch");
  spmv::residual_blocked(row_ptr_.data(), col_idx_.data(), values_.data(),
                         b.data(), x.data(), y.data(), block_rows_);
}

double CsrMatrix::residual_norm2(std::span<const double> b,
                                 std::span<const double> x,
                                 std::span<double> y) const {
  require(static_cast<index_t>(b.size()) == rows_, "residual: b size mismatch");
  require(static_cast<index_t>(x.size()) == cols_, "residual: x size mismatch");
  require(static_cast<index_t>(y.size()) == rows_, "residual: y size mismatch");
  // One fused sweep saves the separate norm pass over y; count it like the
  // norm2() call it replaces.
  detail::count_passes(1);
  return std::sqrt(spmv::residual_norm2_sq(row_ptr_.data(), col_idx_.data(),
                                           values_.data(), b.data(), x.data(),
                                           y.data(), rows_));
}

void CsrMatrix::multiply_rowwise(std::span<const double> x,
                                 std::span<double> y) const {
  require(static_cast<index_t>(x.size()) == cols_, "spmv: x size mismatch");
  require(static_cast<index_t>(y.size()) == rows_, "spmv: y size mismatch");
  parallel_for(0, rows_, [&](index_t r) {
    const index_t k0 = row_ptr_[r];
    y[r] = spmv::row_dot_scalar(col_idx_.data() + k0, values_.data() + k0,
                                row_ptr_[r + 1] - k0, x.data());
  });
}

void CsrMatrix::residual_rowwise(std::span<const double> b,
                                 std::span<const double> x,
                                 std::span<double> y) const {
  require(static_cast<index_t>(b.size()) == rows_, "residual: b size mismatch");
  require(static_cast<index_t>(x.size()) == cols_, "residual: x size mismatch");
  parallel_for(0, rows_, [&](index_t r) {
    const index_t k0 = row_ptr_[r];
    y[r] = b[r] - spmv::row_dot_scalar(col_idx_.data() + k0,
                                       values_.data() + k0,
                                       row_ptr_[r + 1] - k0, x.data());
  });
}

void CsrMatrix::validate() const {
  require(rows_ >= 0 && cols_ >= 0, "csr: negative dimensions");
  require(static_cast<index_t>(row_ptr_.size()) == rows_ + 1,
          "csr: row_ptr size mismatch");
  require(row_ptr_.front() == 0, "csr: row_ptr must start at 0");
  require(row_ptr_.back() == static_cast<index_t>(col_idx_.size()),
          "csr: row_ptr must end at nnz");
  require(col_idx_.size() == values_.size(), "csr: col/value size mismatch");
  for (index_t r = 0; r < rows_; ++r) {
    require(row_ptr_[r] <= row_ptr_[r + 1], "csr: row_ptr not monotonic");
    for (index_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      require(col_idx_[k] >= 0 && col_idx_[k] < cols_,
              "csr: column index out of range");
      if (k > row_ptr_[r])
        require(col_idx_[k - 1] < col_idx_[k], "csr: columns not ascending");
    }
  }
}

CsrMatrix CsrMatrix::transpose() const {
  std::vector<index_t> t_row_ptr(static_cast<std::size_t>(cols_) + 1, 0);
  for (const index_t c : col_idx_) ++t_row_ptr[c + 1];
  for (index_t c = 0; c < cols_; ++c) t_row_ptr[c + 1] += t_row_ptr[c];

  std::vector<index_t> t_col(col_idx_.size());
  std::vector<double> t_val(values_.size());
  std::vector<index_t> next(t_row_ptr.begin(), t_row_ptr.end() - 1);
  for (index_t r = 0; r < rows_; ++r) {
    for (index_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      const index_t c = col_idx_[k];
      const index_t slot = next[c]++;
      t_col[slot] = r;   // rows visited in order => columns ascend per row
      t_val[slot] = values_[k];
    }
  }
  // The counting pass above produces a correct-by-construction layout
  // (rows visited in order => columns ascend per row); skip re-validation.
  return CsrMatrix(Trusted{}, cols_, rows_, std::move(t_row_ptr),
                   std::move(t_col), std::move(t_val));
}

bool CsrMatrix::is_symmetric(double tol) const {
  if (rows_ != cols_) return false;
  const CsrMatrix t = transpose();
  if (t.nnz() != nnz()) return false;
  for (index_t r = 0; r < rows_; ++r) {
    if (t.row_ptr_[r] != row_ptr_[r]) return false;
    for (index_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      if (t.col_idx_[k] != col_idx_[k]) return false;
      if (std::fabs(t.values_[k] - values_[k]) > tol) return false;
    }
  }
  return true;
}

}  // namespace lck

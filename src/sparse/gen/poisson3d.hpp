#pragma once
/// \file poisson3d.hpp
/// \brief The paper's evaluation matrix (Eq. 15): 7-point 3-D Poisson
///        operator with diagonal −6 and identity off-diagonal blocks, plus
///        related stencil generators.

#include "sparse/csr.hpp"

namespace lck {

/// Build the n³×n³ matrix of Eq. 15 in the paper:
///   A = blocktridiag(I, M, I),  M = blocktridiag(I, T, I),
///   T = tridiag(1, −6, 1).
/// This is −1 times the standard 7-point Laplacian; it is symmetric and
/// negative definite, so solvers are fed −A·x = −b when SPD is required
/// (see poisson3d_spd()).
[[nodiscard]] CsrMatrix poisson3d(index_t n);

/// Same stencil with flipped sign: tridiag(−1, 6, −1) blocks — symmetric
/// positive definite, suitable for CG and for building IC(0).
[[nodiscard]] CsrMatrix poisson3d_spd(index_t n);

/// 2-D 5-point Laplacian (n²×n², diagonal 4), used in tests and examples.
[[nodiscard]] CsrMatrix laplacian2d(index_t n);

/// 1-D Laplacian tridiag(−1, 2, −1), the smallest member of the family.
[[nodiscard]] CsrMatrix laplacian1d(index_t n);

/// Right-hand side the experiments use: b = A·x_true with
/// x_true[i] = sin(2π·i/n_total) + 1.5, a smooth field representative of
/// PDE solution data (what SZ-class compressors are designed for).
[[nodiscard]] Vector smooth_rhs(const CsrMatrix& a);

/// The smooth ground-truth solution used by smooth_rhs().
[[nodiscard]] Vector smooth_solution(index_t n);

}  // namespace lck

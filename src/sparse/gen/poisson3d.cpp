#include "sparse/gen/poisson3d.hpp"

#include <cmath>

namespace lck {
namespace {

/// Shared builder for the ±7-point operator: diagonal `diag`, off entries
/// `off` at the six stencil neighbours.
CsrMatrix stencil7(index_t n, double diag, double off) {
  require(n >= 1, "poisson3d: n must be >= 1");
  const index_t n2 = n * n;
  const index_t n3 = n2 * n;
  CsrBuilder b(n3, n3);
  b.reserve(7 * n3);
  for (index_t z = 0; z < n; ++z) {
    for (index_t y = 0; y < n; ++y) {
      for (index_t x = 0; x < n; ++x) {
        const index_t row = z * n2 + y * n + x;
        if (z > 0) b.add(row - n2, off);
        if (y > 0) b.add(row - n, off);
        if (x > 0) b.add(row - 1, off);
        b.add(row, diag);
        if (x < n - 1) b.add(row + 1, off);
        if (y < n - 1) b.add(row + n, off);
        if (z < n - 1) b.add(row + n2, off);
        b.finish_row();
      }
    }
  }
  return std::move(b).build();
}

}  // namespace

CsrMatrix poisson3d(index_t n) { return stencil7(n, -6.0, 1.0); }

CsrMatrix poisson3d_spd(index_t n) { return stencil7(n, 6.0, -1.0); }

CsrMatrix laplacian2d(index_t n) {
  require(n >= 1, "laplacian2d: n must be >= 1");
  const index_t n2 = n * n;
  CsrBuilder b(n2, n2);
  b.reserve(5 * n2);
  for (index_t y = 0; y < n; ++y) {
    for (index_t x = 0; x < n; ++x) {
      const index_t row = y * n + x;
      if (y > 0) b.add(row - n, -1.0);
      if (x > 0) b.add(row - 1, -1.0);
      b.add(row, 4.0);
      if (x < n - 1) b.add(row + 1, -1.0);
      if (y < n - 1) b.add(row + n, -1.0);
      b.finish_row();
    }
  }
  return std::move(b).build();
}

CsrMatrix laplacian1d(index_t n) {
  require(n >= 1, "laplacian1d: n must be >= 1");
  CsrBuilder b(n, n);
  b.reserve(3 * n);
  for (index_t i = 0; i < n; ++i) {
    if (i > 0) b.add(i - 1, -1.0);
    b.add(i, 2.0);
    if (i < n - 1) b.add(i + 1, -1.0);
    b.finish_row();
  }
  return std::move(b).build();
}

Vector smooth_solution(index_t n) {
  Vector x(static_cast<std::size_t>(n));
  const double two_pi = 6.283185307179586476925286766559;
  for (index_t i = 0; i < n; ++i)
    x[i] = std::sin(two_pi * static_cast<double>(i) / static_cast<double>(n)) + 1.5;
  return x;
}

Vector smooth_rhs(const CsrMatrix& a) {
  const Vector x = smooth_solution(a.rows());
  Vector b(static_cast<std::size_t>(a.rows()));
  a.multiply(x, b);
  return b;
}

}  // namespace lck

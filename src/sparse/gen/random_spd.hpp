#pragma once
/// \file random_spd.hpp
/// \brief Random sparse diagonally dominant matrices for tests and property
///        sweeps (stationary-method convergence requires dominance).

#include "common/rng.hpp"
#include "sparse/csr.hpp"

namespace lck {

struct RandomSpdOptions {
  index_t n = 100;            ///< Dimension.
  index_t off_per_row = 4;    ///< Off-diagonal entries per row (approx.).
  double dominance = 1.5;     ///< diag = dominance * (sum of |off-diag|).
  bool symmetric = true;      ///< Symmetrize (A + Aᵀ)/2 pattern.
  std::uint64_t seed = 7;
};

/// Random diagonally dominant matrix; symmetric ⇒ SPD by Gershgorin.
[[nodiscard]] CsrMatrix random_dominant(const RandomSpdOptions& opt);

}  // namespace lck

#include "sparse/gen/random_spd.hpp"

#include <cmath>
#include <map>
#include <vector>

namespace lck {

CsrMatrix random_dominant(const RandomSpdOptions& opt) {
  require(opt.n >= 1, "random_dominant: n must be >= 1");
  require(opt.dominance > 1.0, "random_dominant: dominance must exceed 1");
  Rng rng(opt.seed);

  std::vector<std::map<index_t, double>> rows(static_cast<std::size_t>(opt.n));
  for (index_t r = 0; r < opt.n; ++r) {
    for (index_t e = 0; e < opt.off_per_row; ++e) {
      const index_t c = static_cast<index_t>(
          rng.uniform_index(static_cast<std::uint64_t>(opt.n)));
      if (c == r) continue;
      const double v = rng.uniform(-1.0, 1.0);
      rows[r][c] = v;
      if (opt.symmetric) rows[c][r] = v;
    }
  }
  for (index_t r = 0; r < opt.n; ++r) {
    double off_sum = 0.0;
    for (const auto& [c, v] : rows[r]) off_sum += std::fabs(v);
    rows[r][r] = opt.dominance * (off_sum > 0.0 ? off_sum : 1.0);
  }

  CsrBuilder b(opt.n, opt.n);
  for (index_t r = 0; r < opt.n; ++r) {
    for (const auto& [c, v] : rows[r]) b.add(c, v);
    b.finish_row();
  }
  return std::move(b).build();
}

}  // namespace lck

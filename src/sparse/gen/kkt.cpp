#include "sparse/gen/kkt.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "sparse/gen/poisson3d.hpp"

namespace lck {

CsrMatrix kkt_matrix(const KktOptions& opt) {
  require(opt.grid_n >= 2, "kkt: grid too small");
  const CsrMatrix h = poisson3d_spd(opt.grid_n);
  const index_t nh = h.rows();
  const index_t m = opt.constraints > 0 ? opt.constraints : nh / 4;
  require(m >= 1, "kkt: need at least one constraint");
  const index_t n = nh + m;

  // Constraint Jacobian rows: each constraint couples 3 pseudo-random state
  // variables with ±1 coefficients (a sparse incidence-like structure, as in
  // discretized equality constraints).
  Rng rng(opt.seed);
  std::vector<std::map<index_t, double>> b_rows(static_cast<std::size_t>(m));
  for (index_t c = 0; c < m; ++c) {
    while (b_rows[c].size() < 3) {
      const index_t j = static_cast<index_t>(rng.uniform_index(
          static_cast<std::uint64_t>(nh)));
      const double v = rng.uniform() < 0.5 ? 1.0 : -1.0;
      b_rows[c].emplace(j, v);
    }
  }

  // Bᵀ columns grouped by state row for the upper blocks.
  std::vector<std::map<index_t, double>> bt_rows(static_cast<std::size_t>(nh));
  for (index_t c = 0; c < m; ++c)
    for (const auto& [j, v] : b_rows[c]) bt_rows[j].emplace(nh + c, v);

  CsrBuilder bld(n, n);
  bld.reserve(h.nnz() + 2 * 3 * m + m);

  // Top block rows: [ H  Bᵀ ].
  for (index_t r = 0; r < nh; ++r) {
    for (index_t k = h.row_ptr()[r]; k < h.row_ptr()[r + 1]; ++k)
      bld.add(h.col_idx()[k], h.values()[k]);
    for (const auto& [c, v] : bt_rows[r]) bld.add(c, v);
    bld.finish_row();
  }
  // Bottom block rows: [ B  −δI ].
  for (index_t c = 0; c < m; ++c) {
    for (const auto& [j, v] : b_rows[c]) bld.add(j, v);
    bld.add(nh + c, -opt.regularization);
    bld.finish_row();
  }
  return std::move(bld).build();
}

}  // namespace lck

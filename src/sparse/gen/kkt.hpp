#pragma once
/// \file kkt.hpp
/// \brief Synthetic symmetric indefinite KKT matrix (SuiteSparse KKT240
///        stand-in for Fig. 3).
///
/// The paper's Fig. 3 solves KKT240 (~28 M equations), a symmetric
/// indefinite saddle-point system from 3-D PDE-constrained optimization
/// [Schenk et al.]. That matrix is not redistributable here, so we generate
/// a structurally equivalent saddle-point system
///
///     K = [ H  Bᵀ ]
///         [ B  −δI ]
///
/// where H is the SPD 3-D Poisson stencil (the PDE Hessian block), B a
/// sparse constraint Jacobian coupling each constraint to a few states, and
/// δ ≥ 0 a small regularization. K is symmetric and indefinite (H ≻ 0,
/// −δI ⪯ 0), exercising exactly the GMRES + Jacobi-preconditioner path the
/// paper uses on KKT240.

#include "common/rng.hpp"
#include "sparse/csr.hpp"

namespace lck {

struct KktOptions {
  index_t grid_n = 16;       ///< Poisson grid for the H block (H is n³×n³).
  index_t constraints = 0;   ///< Rows of B; 0 => n³/4.
  double regularization = 1e-2;  ///< δ in the (2,2) block.
  std::uint64_t seed = 42;   ///< Sparsity pattern of B.
};

/// Generate the saddle-point matrix described above.
/// Result dimension: n³ + constraints.
[[nodiscard]] CsrMatrix kkt_matrix(const KktOptions& opt);

}  // namespace lck

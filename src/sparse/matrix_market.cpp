#include "sparse/matrix_market.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <tuple>
#include <vector>

namespace lck {

CsrMatrix read_matrix_market(std::istream& in) {
  std::string line;
  if (!std::getline(in, line))
    throw corrupt_stream_error("matrix market: empty stream");

  std::istringstream header(line);
  std::string banner, object, format, field, symmetry;
  header >> banner >> object >> format >> field >> symmetry;
  if (banner != "%%MatrixMarket" || object != "matrix")
    throw corrupt_stream_error("matrix market: bad banner");
  if (format != "coordinate" || field != "real")
    throw corrupt_stream_error("matrix market: only 'coordinate real' supported");
  const bool symmetric = symmetry == "symmetric";
  if (!symmetric && symmetry != "general")
    throw corrupt_stream_error("matrix market: unsupported symmetry: " + symmetry);

  // Skip comments.
  do {
    if (!std::getline(in, line))
      throw corrupt_stream_error("matrix market: missing size line");
  } while (!line.empty() && line[0] == '%');

  index_t rows = 0, cols = 0, entries = 0;
  {
    std::istringstream sizes(line);
    if (!(sizes >> rows >> cols >> entries))
      throw corrupt_stream_error("matrix market: bad size line");
  }

  std::vector<std::tuple<index_t, index_t, double>> coo;
  coo.reserve(static_cast<std::size_t>(symmetric ? 2 * entries : entries));
  for (index_t e = 0; e < entries; ++e) {
    index_t r = 0, c = 0;
    double v = 0.0;
    if (!(in >> r >> c >> v))
      throw corrupt_stream_error("matrix market: truncated entries");
    if (r < 1 || r > rows || c < 1 || c > cols)
      throw corrupt_stream_error("matrix market: index out of range");
    coo.emplace_back(r - 1, c - 1, v);
    if (symmetric && r != c) coo.emplace_back(c - 1, r - 1, v);
  }

  std::sort(coo.begin(), coo.end());
  CsrBuilder b(rows, cols);
  b.reserve(static_cast<index_t>(coo.size()));
  index_t current_row = 0;
  for (const auto& [r, c, v] : coo) {
    while (current_row < r) {
      b.finish_row();
      ++current_row;
    }
    b.add(c, v);
  }
  while (current_row < rows) {
    b.finish_row();
    ++current_row;
  }
  // Untrusted external input: keep the full validate() pass on top of the
  // builder's incremental checks.
  return std::move(b).build_validated();
}

CsrMatrix load_matrix_market(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw corrupt_stream_error("matrix market: cannot open " + path);
  return read_matrix_market(f);
}

void write_matrix_market(std::ostream& out, const CsrMatrix& a) {
  out << "%%MatrixMarket matrix coordinate real general\n";
  out << a.rows() << ' ' << a.cols() << ' ' << a.nnz() << '\n';
  out.precision(17);
  for (index_t r = 0; r < a.rows(); ++r)
    for (index_t k = a.row_ptr()[r]; k < a.row_ptr()[r + 1]; ++k)
      out << (r + 1) << ' ' << (a.col_idx()[k] + 1) << ' ' << a.values()[k]
          << '\n';
}

}  // namespace lck

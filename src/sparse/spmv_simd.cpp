/// \file spmv_simd.cpp
/// \brief Dispatched SpMV drivers; see spmv_simd.hpp for the contracts.

#include "sparse/spmv_simd.hpp"

#include "common/simd.hpp"
#include "parallel/parallel_for.hpp"
#include "sparse/vector_ops.hpp"

namespace lck::spmv {

void multiply_blocked(const index_t* row_ptr, const index_t* col_idx,
                      const double* values, const double* x, double* y,
                      std::span<const index_t> block_rows) {
  const auto& o = simd::ops();
  const auto nblocks = static_cast<index_t>(block_rows.size()) - 1;
  parallel_for(0, nblocks, [&](index_t blk) {
    o.spmv_rows(row_ptr, col_idx, values, x, y, block_rows[blk],
                block_rows[blk + 1]);
  });
}

void residual_blocked(const index_t* row_ptr, const index_t* col_idx,
                      const double* values, const double* b, const double* x,
                      double* y, std::span<const index_t> block_rows) {
  const auto& o = simd::ops();
  const auto nblocks = static_cast<index_t>(block_rows.size()) - 1;
  parallel_for(0, nblocks, [&](index_t blk) {
    o.residual_rows(row_ptr, col_idx, values, b, x, y, block_rows[blk],
                    block_rows[blk + 1]);
  });
}

double residual_norm2_sq(const index_t* row_ptr, const index_t* col_idx,
                         const double* values, const double* b, const double* x,
                         double* y, index_t rows) {
  const auto& o = simd::ops();
  // Ride the same fixed partition (and serial partial combine) as
  // vector_ops' dense reductions, so the result is bitwise what
  // residual() + norm2()² would produce.
  return detail::reduce_blocks_sum(rows, [&](index_t r0, index_t r1) {
    return o.residual_sq_rows(row_ptr, col_idx, values, b, x, y, r0, r1);
  });
}

double row_dot_scalar(const index_t* col, const double* val, index_t len,
                      const double* x) {
  return simd::ops_for(simd::Isa::kScalar).row_dot(col, val, len, x);
}

}  // namespace lck::spmv

#pragma once
/// \file csr.hpp
/// \brief Compressed-sparse-row matrix with parallel SpMV and the
///        triangular-solve kernels the preconditioners need.

#include <span>
#include <vector>

#include "common/types.hpp"
#include "sparse/vector_ops.hpp"

namespace lck {

/// Square or rectangular sparse matrix in CSR layout.
///
/// Invariants (checked by validate()):
///  - row_ptr has rows()+1 monotonically non-decreasing entries,
///  - col_idx values lie in [0, cols()),
///  - row_ptr.front() == 0 and row_ptr.back() == nnz().
class CsrMatrix {
 public:
  CsrMatrix() = default;

  CsrMatrix(index_t rows, index_t cols, std::vector<index_t> row_ptr,
            std::vector<index_t> col_idx, std::vector<double> values)
      : rows_(rows),
        cols_(cols),
        row_ptr_(std::move(row_ptr)),
        col_idx_(std::move(col_idx)),
        values_(std::move(values)) {
    validate();
  }

  [[nodiscard]] index_t rows() const noexcept { return rows_; }
  [[nodiscard]] index_t cols() const noexcept { return cols_; }
  [[nodiscard]] index_t nnz() const noexcept {
    return static_cast<index_t>(values_.size());
  }

  [[nodiscard]] std::span<const index_t> row_ptr() const noexcept { return row_ptr_; }
  [[nodiscard]] std::span<const index_t> col_idx() const noexcept { return col_idx_; }
  [[nodiscard]] std::span<const double> values() const noexcept { return values_; }
  [[nodiscard]] std::span<double> values_mut() noexcept { return values_; }

  /// y := A·x (parallel over rows).
  void multiply(std::span<const double> x, std::span<double> y) const {
    require(static_cast<index_t>(x.size()) == cols_, "spmv: x size mismatch");
    require(static_cast<index_t>(y.size()) == rows_, "spmv: y size mismatch");
    parallel_for(0, rows_, [&](index_t r) {
      double sum = 0.0;
      for (index_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k)
        sum += values_[k] * x[col_idx_[k]];
      y[r] = sum;
    });
  }

  /// y := b − A·x (fused residual kernel; paper Algorithm 1 line 8).
  void residual(std::span<const double> b, std::span<const double> x,
                std::span<double> y) const {
    require(static_cast<index_t>(b.size()) == rows_, "residual: b size mismatch");
    require(static_cast<index_t>(x.size()) == cols_, "residual: x size mismatch");
    parallel_for(0, rows_, [&](index_t r) {
      double sum = 0.0;
      for (index_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k)
        sum += values_[k] * x[col_idx_[k]];
      y[r] = b[r] - sum;
    });
  }

  /// Value at (r, c), 0 if not stored. O(row nnz) scan; for tests/tools.
  [[nodiscard]] double at(index_t r, index_t c) const {
    for (index_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k)
      if (col_idx_[k] == c) return values_[k];
    return 0.0;
  }

  /// Diagonal entries (0 where the diagonal is not stored).
  [[nodiscard]] Vector diagonal() const {
    Vector d(static_cast<std::size_t>(rows_), 0.0);
    parallel_for(0, rows_, [&](index_t r) {
      for (index_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k)
        if (col_idx_[k] == r) {
          d[r] = values_[k];
          break;
        }
    });
    return d;
  }

  /// Structural + numerical symmetry check (exact equality), O(nnz·log-ish).
  [[nodiscard]] bool is_symmetric(double tol = 0.0) const;

  /// Transpose (used by tests and the KKT generator).
  [[nodiscard]] CsrMatrix transpose() const;

  void validate() const;

 private:
  index_t rows_ = 0, cols_ = 0;
  std::vector<index_t> row_ptr_{0};
  std::vector<index_t> col_idx_;
  std::vector<double> values_;
};

/// Row-by-row CSR builder; entries within a row must be appended in
/// ascending column order (asserted in finish_row).
class CsrBuilder {
 public:
  CsrBuilder(index_t rows, index_t cols) : rows_(rows), cols_(cols) {
    row_ptr_.reserve(static_cast<std::size_t>(rows) + 1);
    row_ptr_.push_back(0);
  }

  /// Reserve capacity for an expected number of nonzeros.
  void reserve(index_t nnz) {
    col_idx_.reserve(static_cast<std::size_t>(nnz));
    values_.reserve(static_cast<std::size_t>(nnz));
  }

  /// Append an entry to the current row. Columns must be strictly ascending
  /// within the row; zero values are kept (callers may rely on structure).
  void add(index_t col, double value) {
    require(col >= 0 && col < cols_, "csr builder: column out of range");
    require(col_idx_.size() == static_cast<std::size_t>(row_ptr_.back()) ||
                col_idx_.back() < col,
            "csr builder: columns must be ascending within a row");
    col_idx_.push_back(col);
    values_.push_back(value);
  }

  /// Close the current row.
  void finish_row() {
    require(static_cast<index_t>(row_ptr_.size()) <= rows_,
            "csr builder: too many rows");
    row_ptr_.push_back(static_cast<index_t>(col_idx_.size()));
  }

  /// Finalize; all rows must have been finished.
  [[nodiscard]] CsrMatrix build() && {
    require(static_cast<index_t>(row_ptr_.size()) == rows_ + 1,
            "csr builder: not all rows finished");
    return CsrMatrix(rows_, cols_, std::move(row_ptr_), std::move(col_idx_),
                     std::move(values_));
  }

 private:
  index_t rows_, cols_;
  std::vector<index_t> row_ptr_;
  std::vector<index_t> col_idx_;
  std::vector<double> values_;
};

}  // namespace lck

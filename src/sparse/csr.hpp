#pragma once
/// \file csr.hpp
/// \brief Compressed-sparse-row matrix with parallel SpMV and the
///        triangular-solve kernels the preconditioners need.

#include <algorithm>
#include <span>
#include <vector>

#include "common/types.hpp"
#include "sparse/vector_ops.hpp"

namespace lck {

/// Square or rectangular sparse matrix in CSR layout.
///
/// Invariants (checked by validate()):
///  - row_ptr has rows()+1 monotonically non-decreasing entries,
///  - col_idx values lie in [0, cols()) and ascend within each row,
///  - row_ptr.front() == 0 and row_ptr.back() == nnz().
///
/// Construction precomputes a row-blocking plan for SpMV: consecutive rows
/// are grouped into blocks of ~kSpmvBlockNnz nonzeros (capped at
/// kSpmvBlockMaxRows rows), so each parallel task streams a cache-sized
/// slice of col_idx/values and short rows are batched many-per-task instead
/// of one-per-task. Per-row dots follow the lane-canonical row contract
/// (sparse/spmv_simd.hpp): serial association below simd::kSimdRowMinNnz
/// nonzeros, 8-lane canonical (gather kernels) above it — fixed per row
/// length, so blocked SpMV is bit-identical to the plain row loop
/// (multiply_rowwise) and across every dispatched ISA.
class CsrMatrix {
 public:
  /// Target nonzeros per SpMV block (~48 KiB of col+val per block).
  static constexpr index_t kSpmvBlockNnz = 4096;
  /// Cap on rows per block so empty/short-row runs still spread across tasks.
  static constexpr index_t kSpmvBlockMaxRows = 1024;

  CsrMatrix() = default;

  CsrMatrix(index_t rows, index_t cols, std::vector<index_t> row_ptr,
            std::vector<index_t> col_idx, std::vector<double> values)
      : rows_(rows),
        cols_(cols),
        row_ptr_(std::move(row_ptr)),
        col_idx_(std::move(col_idx)),
        values_(std::move(values)) {
    validate();
    build_plan();
  }

  [[nodiscard]] index_t rows() const noexcept { return rows_; }
  [[nodiscard]] index_t cols() const noexcept { return cols_; }
  [[nodiscard]] index_t nnz() const noexcept {
    return static_cast<index_t>(values_.size());
  }

  [[nodiscard]] std::span<const index_t> row_ptr() const noexcept { return row_ptr_; }
  [[nodiscard]] std::span<const index_t> col_idx() const noexcept { return col_idx_; }
  [[nodiscard]] std::span<const double> values() const noexcept { return values_; }
  [[nodiscard]] std::span<double> values_mut() noexcept { return values_; }

  /// y := A·x. Cache-blocked over the precomputed row plan, per-row dots
  /// dispatched to the active SIMD backend (gather kernels for rows with
  /// ≥ simd::kSimdRowMinNnz nonzeros, serial sums below). The row contract
  /// fixes the association per row length, so the result is bit-identical
  /// to multiply_rowwise() and across every ISA.
  void multiply(std::span<const double> x, std::span<double> y) const;

  /// y := b − A·x (fused residual kernel; paper Algorithm 1 line 8).
  /// Blocked like multiply(); bit-identical to residual_rowwise().
  void residual(std::span<const double> b, std::span<const double> x,
                std::span<double> y) const;

  /// Fused y := b − A·x and ‖y‖₂ in one sweep — the solvers' restart /
  /// recovery convergence check. Parallelized over the lane-canonical
  /// reduction partition of the rows (not the nnz plan), so the returned
  /// norm is bit-identical to residual() followed by norm2(y) at any
  /// thread count and ISA.
  [[nodiscard]] double residual_norm2(std::span<const double> b,
                                      std::span<const double> x,
                                      std::span<double> y) const;

  /// Plain one-row-per-task reference SpMV pinned to the *scalar* backend.
  /// Kept for tests and benches that pin blocked == rowwise bit-for-bit —
  /// which, with dispatch live, doubles as a cross-ISA parity check.
  void multiply_rowwise(std::span<const double> x, std::span<double> y) const;

  /// Plain reference residual, pairing multiply_rowwise().
  void residual_rowwise(std::span<const double> b, std::span<const double> x,
                        std::span<double> y) const;

  /// Number of blocks in the SpMV row plan (for tests/benches).
  [[nodiscard]] index_t spmv_blocks() const noexcept {
    return static_cast<index_t>(block_rows_.size()) - 1;
  }

  /// Value at (r, c), 0 if not stored. Columns ascend within a row, so this
  /// is a binary search: O(log row-nnz).
  [[nodiscard]] double at(index_t r, index_t c) const {
    const auto first = col_idx_.begin() + row_ptr_[r];
    const auto last = col_idx_.begin() + row_ptr_[r + 1];
    const auto it = std::lower_bound(first, last, c);
    if (it != last && *it == c)
      return values_[static_cast<std::size_t>(it - col_idx_.begin())];
    return 0.0;
  }

  /// Diagonal entries (0 where the diagonal is not stored).
  [[nodiscard]] Vector diagonal() const {
    Vector d(static_cast<std::size_t>(rows_), 0.0);
    parallel_for(0, rows_, [&](index_t r) {
      for (index_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k)
        if (col_idx_[k] == r) {
          d[r] = values_[k];
          break;
        }
    });
    return d;
  }

  /// Structural + numerical symmetry check (exact equality), O(nnz·log-ish).
  [[nodiscard]] bool is_symmetric(double tol = 0.0) const;

  /// Transpose (used by tests and the KKT generator).
  [[nodiscard]] CsrMatrix transpose() const;

  void validate() const;

 private:
  /// Tag for the trusted construction path: skips validate() when the
  /// arrays are correct by construction (CsrBuilder's incremental checks,
  /// transpose()'s counting pass). Untrusted input — e.g. Matrix Market
  /// ingestion — must keep going through the validating constructor.
  struct Trusted {};

  CsrMatrix(Trusted, index_t rows, index_t cols, std::vector<index_t> row_ptr,
            std::vector<index_t> col_idx, std::vector<double> values)
      : rows_(rows),
        cols_(cols),
        row_ptr_(std::move(row_ptr)),
        col_idx_(std::move(col_idx)),
        values_(std::move(values)) {
    build_plan();
  }

  friend class CsrBuilder;

  /// Recompute block_rows_ from row_ptr_ (called by every constructor).
  void build_plan();

  index_t rows_ = 0, cols_ = 0;
  std::vector<index_t> row_ptr_{0};
  std::vector<index_t> col_idx_;
  std::vector<double> values_;
  /// SpMV row plan: block b covers rows [block_rows_[b], block_rows_[b+1]).
  std::vector<index_t> block_rows_{0};
};

/// Row-by-row CSR builder; entries within a row must be appended in
/// ascending column order (asserted in finish_row).
class CsrBuilder {
 public:
  CsrBuilder(index_t rows, index_t cols) : rows_(rows), cols_(cols) {
    row_ptr_.reserve(static_cast<std::size_t>(rows) + 1);
    row_ptr_.push_back(0);
  }

  /// Reserve capacity for an expected number of nonzeros.
  void reserve(index_t nnz) {
    col_idx_.reserve(static_cast<std::size_t>(nnz));
    values_.reserve(static_cast<std::size_t>(nnz));
  }

  /// Append an entry to the current row. Columns must be strictly ascending
  /// within the row; zero values are kept (callers may rely on structure).
  void add(index_t col, double value) {
    require(col >= 0 && col < cols_, "csr builder: column out of range");
    require(col_idx_.size() == static_cast<std::size_t>(row_ptr_.back()) ||
                col_idx_.back() < col,
            "csr builder: columns must be ascending within a row");
    col_idx_.push_back(col);
    values_.push_back(value);
  }

  /// Close the current row.
  void finish_row() {
    require(static_cast<index_t>(row_ptr_.size()) <= rows_,
            "csr builder: too many rows");
    row_ptr_.push_back(static_cast<index_t>(col_idx_.size()));
  }

  /// Finalize; all rows must have been finished. Uses the trusted (skip
  /// re-validate) path: add()/finish_row() already enforced every invariant
  /// validate() would re-check — columns in range and strictly ascending per
  /// row, row_ptr starting at 0, monotone, and ending at nnz.
  [[nodiscard]] CsrMatrix build() && {
    require(static_cast<index_t>(row_ptr_.size()) == rows_ + 1,
            "csr builder: not all rows finished");
    return CsrMatrix(CsrMatrix::Trusted{}, rows_, cols_, std::move(row_ptr_),
                     std::move(col_idx_), std::move(values_));
  }

  /// Finalize with a full validate() pass. For builders fed from untrusted
  /// input (Matrix Market files) where a redundant O(nnz) check is cheap
  /// insurance against builder-bypassing bugs.
  [[nodiscard]] CsrMatrix build_validated() && {
    require(static_cast<index_t>(row_ptr_.size()) == rows_ + 1,
            "csr builder: not all rows finished");
    return CsrMatrix(rows_, cols_, std::move(row_ptr_), std::move(col_idx_),
                     std::move(values_));
  }

 private:
  index_t rows_, cols_;
  std::vector<index_t> row_ptr_;
  std::vector<index_t> col_idx_;
  std::vector<double> values_;
};

}  // namespace lck

/// Domain scenario 3 — bring-your-own matrix: load a SuiteSparse Matrix
/// Market file (e.g. the paper's KKT240) and solve it with GMRES(30) under
/// lossy checkpointing; without an argument, a synthetic KKT saddle-point
/// system stands in (DESIGN.md substitution for Fig. 3).
///
///   build/examples/custom_matrix [matrix.mtx] [--policy fixed|young|adaptive]
///                                [--delta <chain-len>]
///                                [--trace <path>] [--metrics <path>]
///                                [--spmv-bench]
///
/// --trace writes the run's checkpoint-lifecycle spans as Chrome
/// trace_event JSON (open in Perfetto); --metrics dumps the
/// MetricsSnapshot of the run as JSON. --spmv-bench skips the solve and
/// instead times SpMV on the loaded matrix under the scalar reference
/// backend vs the dispatched SIMD backend (plus the fused residual+norm
/// kernel vs its separate form) — the first "real matrices" kernel rows.

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>

#include "bench_common.hpp"
#include "common/rng.hpp"
#include "common/simd.hpp"
#include "common/timer.hpp"
#include "core/resilient_runner.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/perf_model.hpp"
#include "solvers/gmres.hpp"
#include "sparse/gen/kkt.hpp"
#include "sparse/matrix_market.hpp"
#include "sparse/vector_ops.hpp"

namespace {

/// Times SpMV and the fused residual-norm kernel on `a` under the scalar
/// reference backend vs the dispatched ISA. Returns the process exit code.
int run_spmv_bench(const lck::CsrMatrix& a) {
  using namespace lck;
  const simd::Isa active = simd::active_isa();
  Rng rng(13);
  Vector x(static_cast<std::size_t>(a.cols()));
  Vector b(static_cast<std::size_t>(a.rows()));
  for (auto& v : x) v = rng.uniform() * 2.0 - 1.0;
  for (auto& v : b) v = rng.uniform() * 2.0 - 1.0;
  Vector y(static_cast<std::size_t>(a.rows()), 0.0);
  Vector r(static_cast<std::size_t>(a.rows()), 0.0);

  // Size reps so each timed segment is a few ms even on small matrices.
  const int reps = static_cast<int>(
      std::max<index_t>(1, 4'000'000 / std::max<index_t>(1, a.nnz())));
  const int trials = 7;
  volatile double guard = 0.0;

  simd::force_isa(simd::Isa::kScalar);
  const double spmv_scalar = time_cpu(
      [&] {
        a.multiply(x, y);
        guard = guard + y[0];
      },
      reps, trials);
  simd::force_isa(active);
  const double spmv_simd = time_cpu(
      [&] {
        a.multiply(x, y);
        guard = guard + y[0];
      },
      reps, trials);
  const double fused = time_cpu(
      [&] { guard = guard + a.residual_norm2(b, x, r); }, reps, trials);
  const double separate = time_cpu(
      [&] {
        a.multiply(x, y);
        waxpy(b, -1.0, y, r);
        guard = guard + norm2(r);
      },
      reps, trials);
  simd::reset_isa();

  std::printf("\nSpMV kernel bench (%d reps x %d trials, best CPU time; "
              "active ISA: %s)\n",
              reps, trials, simd::isa_name(active));
  std::printf("  %-28s %10s %10s\n", "kernel", "cpu [s]", "speedup");
  std::printf("  %-28s %10.5f %10s\n", "multiply (scalar ref)", spmv_scalar,
              "1.00x");
  std::printf("  %-28s %10.5f %9.2fx\n", "multiply (dispatched)", spmv_simd,
              spmv_simd > 0.0 ? spmv_scalar / spmv_simd : 0.0);
  std::printf("  %-28s %10.5f %10s\n", "multiply+waxpy+norm2", separate, "");
  std::printf("  %-28s %10.5f %9.2fx\n", "residual_norm2 (fused)", fused,
              fused > 0.0 ? separate / fused : 0.0);
  return guard == guard ? 0 : 1;  // keep the accumulator observable
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lck;

  std::string mtx_path;
  std::string policy = "fixed";
  std::string trace_path;
  std::string metrics_path;
  int delta_chain = 0;
  bool spmv_bench = false;
  bench::CliParser cli(
      argc, argv,
      "[matrix.mtx] [--policy fixed|young|adaptive] [--delta <chain-len>] "
      "[--trace <path>] [--metrics <path>] [--spmv-bench]");
  while (cli.more()) {
    if (cli.match("--policy"))
      policy = cli.value();
    else if (cli.match("--delta"))
      delta_chain = static_cast<int>(cli.number(0));
    else if (cli.match("--trace"))
      trace_path = cli.value();
    else if (cli.match("--metrics"))
      metrics_path = cli.value();
    else if (cli.match("--spmv-bench"))
      spmv_bench = true;
    else if (cli.positional())
      mtx_path = cli.take();
    else
      cli.die_unknown();
  }

  CsrMatrix a;
  if (!mtx_path.empty()) {
    std::printf("Loading %s ...\n", mtx_path.c_str());
    a = load_matrix_market(mtx_path);
  } else {
    std::printf("No matrix given; generating a synthetic KKT saddle-point "
                "system (symmetric indefinite, like KKT240).\n");
    KktOptions opt;
    opt.grid_n = 12;
    a = kkt_matrix(opt);
  }
  std::printf("Matrix: %lld x %lld, %lld nonzeros, symmetric: %s\n",
              static_cast<long long>(a.rows()),
              static_cast<long long>(a.cols()),
              static_cast<long long>(a.nnz()),
              a.is_symmetric(1e-12) ? "yes" : "no");

  if (spmv_bench) return run_spmv_bench(a);

  Vector b(a.rows(), 1.0);
  const JacobiPreconditioner pc(a);  // the paper's Fig. 3 choice
  SolveOptions opts;
  opts.rtol = 1e-6;
  opts.max_iterations = 100000;
  GmresSolver solver(a, b, &pc, 30, opts);

  // Failure-prone execution with adaptive-bound lossy checkpointing.
  ResilienceConfig cfg;
  cfg.scheme = CkptScheme::kLossy;
  cfg.compression.adaptive_error_bound = true;  // Theorem 3: eb tracks ||r||/||b||
  cfg.compression.adaptive_theta = 0.25;
  cfg.failure.mtti_seconds = 900.0;  // aggressive for demonstration
  cfg.failure.seed = 7;
  cfg.iteration_seconds = 1.0;
  cfg.policy.name = policy;
  cfg.policy.interval_seconds =
      young_interval_seconds(cfg.cluster.write_seconds(
                                 static_cast<double>(a.rows()) * 8.0),
                             cfg.failure.mtti_seconds);
  cfg.delta.max_delta_chain = delta_chain;
  cfg.dynamic_scale = 1.0;
  cfg.static_bytes = static_cast<double>(a.nnz()) * 12.0;
  cfg.obs.trace = !trace_path.empty();
  cfg.obs.metrics = !metrics_path.empty();

  ResilientRunner runner(solver, cfg);
  const auto res = runner.run();

  if (!trace_path.empty()) {
    runner.trace()->write_chrome_trace(trace_path, /*pid=*/1, "custom_matrix");
    std::printf("wrote Chrome trace to %s\n", trace_path.c_str());
  }
  if (!metrics_path.empty()) {
    std::ofstream f(metrics_path, std::ios::trunc);
    if (!f) {
      std::fprintf(stderr, "cannot open --metrics path %s\n",
                   metrics_path.c_str());
      return 1;
    }
    f << runner.metrics()->snapshot().to_json() << "\n";
    std::printf("wrote metrics to %s\n", metrics_path.c_str());
  }

  std::printf("\nConverged: %s after %lld iterations "
              "(%lld steps executed, %d failures survived, %d checkpoints, "
              "compression %.1fx)\n",
              res.converged ? "yes" : "no",
              static_cast<long long>(res.convergence_iteration),
              static_cast<long long>(res.executed_steps), res.failures,
              res.checkpoints, res.compression_ratio);
  std::printf("Pacing: policy \"%s\", final interval %.1f s, "
              "%d mid-run adjustments\n",
              policy.c_str(), res.policy_interval_final,
              res.interval_adjustments);
  if (delta_chain > 0)
    std::printf("Delta: %d full / %d total checkpoints, %zu chunks stored "
                "as references, %.1f MB of delta streams\n",
                res.full_checkpoints, res.checkpoints, res.chunks_deduped,
                res.delta_bytes_total / 1e6);
  std::printf("Final residual: %.3e (rtol %.0e)\n", res.final_residual_norm,
              opts.rtol);
  return 0;
}

/// Domain scenario 1 — the paper's headline use case: run an iterative
/// solver to convergence on a failure-prone (virtual) cluster and compare
/// the three checkpointing schemes end to end.
///
///   build/examples/resilient_solve [method] [--policy fixed|young|adaptive]
///                                  [--delta <chain-len>] [--jobs <n>]
///                                  [--trace <path>] [--metrics <path>]
///   (method: jacobi | cg | gmres | bicgstab; --delta enables chunked delta
///    checkpointing with at most <chain-len> deltas per full checkpoint)
///
/// Prints, per scheme: total virtual wall-clock, failures survived,
/// checkpoints taken, mean checkpoint size/time, and the fault-tolerance
/// overhead relative to the failure-free baseline.
///
/// --jobs N switches to multi-tenant mode: N concurrent copies of the lossy
/// tiered run share one CheckpointService (one content-addressed L3, per-job
/// namespaces, admission control); prints per-job and aggregate dedup stats.
/// Delta chunking defaults on in this mode — it is the unit of cross-job
/// dedup.
///
/// --trace merges every scheme x mode run into one Chrome trace_event file
/// (one pid per run; open in Perfetto). --metrics writes one JSON object
/// keyed "<scheme>-<mode>" per run, each value a MetricsSnapshot.

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "core/experiment.hpp"
#include "core/resilient_runner.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/perf_model.hpp"
#include "svc/checkpoint_service.hpp"

int main(int argc, char** argv) {
  using namespace lck;
  std::string method = "cg";
  std::string policy = "fixed";
  std::string trace_path;
  std::string metrics_path;
  int delta_chain = -1;  // sentinel: default 0, but 4 in --jobs mode
  int jobs = 1;
  bench::CliParser cli(
      argc, argv,
      "[method] [--policy fixed|young|adaptive] [--delta <chain-len>] "
      "[--jobs <n>] [--trace <path>] [--metrics <path>]");
  while (cli.more()) {
    if (cli.match("--policy"))
      policy = cli.value();
    else if (cli.match("--delta"))
      delta_chain = static_cast<int>(cli.number(0));
    else if (cli.match("--jobs"))
      jobs = static_cast<int>(cli.number(1));
    else if (cli.match("--trace"))
      trace_path = cli.value();
    else if (cli.match("--metrics"))
      metrics_path = cli.value();
    else if (cli.positional())
      method = cli.take();
    else
      cli.die_unknown();
  }
  if (delta_chain < 0) delta_chain = jobs > 1 ? 4 : 0;

  const bool stationary = method == "jacobi";
  const LocalProblem p = make_local_problem(method, stationary ? 14 : 20,
                                            stationary ? 1e-4 : 1e-8, 200000,
                                            /*precondition=*/false);
  auto baseline = p.make_solver();
  baseline->solve();
  const double n_base = static_cast<double>(baseline->iteration());
  // Map the local run onto a 2,048-rank hour-scale execution.
  const double t_it = 3600.0 / n_base;
  const double baseline_seconds = 3600.0;
  std::printf("%s on %lld unknowns: failure-free N = %.0f iterations\n",
              method.c_str(), static_cast<long long>(p.a.rows()), n_base);
  std::printf("Virtual setting: 2,048 ranks, MTTI = 1 h, baseline %.0f s, "
              "pacing policy \"%s\", delta chain %d%s\n\n",
              baseline_seconds, policy.c_str(), delta_chain,
              delta_chain > 0 ? "" : " (full checkpoints)");

  const auto base_cfg = [&](CkptScheme scheme, CkptMode mode) {
    ResilienceConfig cfg;
    cfg.scheme = scheme;
    cfg.ckpt_mode = mode;
    cfg.compression.adaptive_error_bound = method == "gmres";
    cfg.compression.adaptive_theta = 0.25;
    cfg.failure.mtti_seconds = 3600.0;
    cfg.failure.seed = 2024;
    cfg.iteration_seconds = t_it;
    cfg.cluster = ClusterModel{};  // 2,048 ranks
    cfg.dynamic_scale = 78.8e9 / p.vector_bytes();
    cfg.static_bytes = 0.25 * 78.8e9;
    // Fixed pacing: first guess for the Young interval from an
    // uncompressed write (the paper's offline pick). The "young" and
    // "adaptive" policies derive their own interval from the perf model
    // and, for adaptive, the observed per-checkpoint costs.
    cfg.policy.name = policy;
    cfg.policy.interval_seconds =
        young_interval_seconds(cfg.cluster.write_seconds(78.8e9), 3600.0);
    // Chunked delta checkpointing: unchanged chunks between consecutive
    // checkpoints become references (lck.hpp re-exports DeltaConfig).
    cfg.delta.max_delta_chain = delta_chain;
    return cfg;
  };

  if (jobs > 1) {
    // ----- multi-tenant mode: N identical lossy tiered jobs, one service ----
    // Every job runs the same deterministic simulation, so their delta
    // chunks collide in the shared content-addressed L3: the aggregate
    // physical footprint stays near one job's, not N jobs'.
    svc::ServiceConfig scfg;
    if (jobs > scfg.max_jobs) scfg.max_jobs = jobs;
    svc::CheckpointService service(scfg);
    std::vector<svc::JobStats> stats(static_cast<std::size_t>(jobs));
    std::vector<char> ok(static_cast<std::size_t>(jobs), 0);
    std::vector<std::thread> threads;
    for (int j = 0; j < jobs; ++j)
      threads.emplace_back([&, j] {
        auto job = service.open_job({.name = "job" + std::to_string(j),
                                     .l3_promote_every = 2,
                                     .background_promotions = false});
        auto solver = p.make_solver();
        ResilienceConfig cfg = base_cfg(CkptScheme::kLossy,
                                        CkptMode::kTiered);
        cfg.store_factory = job.store_factory();
        const auto res = ResilientRunner(*solver, cfg).run();
        ok[static_cast<std::size_t>(j)] = res.converged ? 1 : 0;
        stats[static_cast<std::size_t>(j)] = job.stats();
      });
    for (auto& t : threads) t.join();

    std::printf("Multi-tenant: %d lossy tiered jobs through one "
                "CheckpointService (delta chain %d)\n\n", jobs, delta_chain);
    std::printf("%-8s %-10s %-9s %-11s %-13s %-9s\n", "job", "converged",
                "L3 wr", "dedup hits", "bytes saved", "adm waits");
    bool all_ok = true;
    for (int j = 0; j < jobs; ++j) {
      const auto& s = stats[static_cast<std::size_t>(j)];
      all_ok = all_ok && ok[static_cast<std::size_t>(j)] != 0;
      std::printf("%-8s %-10s %-9zu %-11zu %-13zu %-9zu\n", s.name.c_str(),
                  ok[static_cast<std::size_t>(j)] != 0 ? "yes" : "NO",
                  s.l3_writes, s.dedup_hits, s.dedup_bytes_saved,
                  s.admission_waits);
    }
    const std::size_t logical = service.l3().logical_bytes();
    const std::size_t physical = service.l3().physical_bytes();
    std::printf("\nAggregate shared tier: logical %zu B, physical %zu B "
                "(%.1fx dedup), %zu chunk hits\n",
                logical, physical,
                physical > 0 ? static_cast<double>(logical) /
                                   static_cast<double>(physical)
                             : 1.0,
                static_cast<std::size_t>(service.l3().dedup_hits()));
    std::printf("%s\n", all_ok ? "All jobs converged."
                               : "CONVERGENCE FAILURES — see rows above.");
    return all_ok ? 0 : 1;
  }

  std::printf("%-13s %-6s %-10s %-7s %-7s %-11s %-11s %-9s %-11s\n",
              "scheme", "mode", "total(s)", "fails", "ckpts", "ckpt MB",
              "blk ckpt s", "drain s", "overhead");
  // Per-run observability output, collected across the scheme x mode grid.
  std::vector<std::unique_ptr<obs::TraceRecorder>> traces;
  std::vector<std::string> run_names;
  std::vector<std::string> metrics_json;
  for (const CkptScheme scheme :
       {CkptScheme::kTraditional, CkptScheme::kLossless, CkptScheme::kLossy}) {
    for (const CkptMode mode :
         {CkptMode::kSync, CkptMode::kAsync, CkptMode::kTiered}) {
      auto solver = p.make_solver();
      ResilienceConfig cfg = base_cfg(scheme, mode);
      cfg.obs.trace = !trace_path.empty();
      cfg.obs.metrics = !metrics_path.empty();

      ResilientRunner runner(*solver, cfg);
      const auto res = runner.run();
      if (cfg.obs.any()) {
        std::string run = to_string(scheme);
        run += '-';
        run += to_string(mode);
        run_names.push_back(run);
        if (cfg.obs.metrics)
          metrics_json.push_back(runner.metrics()->snapshot().to_json());
        if (cfg.obs.trace) traces.push_back(runner.take_trace());
      }
      std::printf(
          "%-13s %-6s %-10.0f %-7d %-7d %-11.1f %-11.1f %-9.1f %9.1f%%\n",
          to_string(scheme), to_string(mode), res.virtual_seconds,
          res.failures, res.checkpoints,
          res.mean_ckpt_stored_bytes / 1e6 / 2048.0, res.mean_ckpt_seconds,
          res.checkpoints > 0
              ? res.ckpt_drain_seconds_total / res.checkpoints
              : 0.0,
          100.0 * (res.virtual_seconds - baseline_seconds) /
              baseline_seconds);
    }
  }
  std::printf(
      "\nLossy checkpointing trades a bounded perturbation of x (SZ, "
      "eb = 1e-4) for dramatically cheaper checkpoints (paper Theorem 1); "
      "the async pipeline then moves the remaining compress+write off the "
      "critical path, so only the staging copy ('blk ckpt s') blocks the "
      "solver while the drain overlaps iterations. The tiered mode drains "
      "into a node-local L1 tier and promotes to L2 (partner) and L3 (PFS) "
      "in the background; failures carry a severity and recover from the "
      "cheapest surviving tier, so the common process/node failures skip "
      "the PFS read entirely.\n");

  if (!trace_path.empty()) {
    std::vector<obs::TraceProcess> processes;
    for (std::size_t i = 0; i < traces.size(); ++i)
      processes.push_back({traces[i].get(), run_names[i]});
    obs::write_chrome_trace(trace_path, processes);
    std::printf("\nwrote Chrome trace (%zu runs) to %s\n", traces.size(),
                trace_path.c_str());
  }
  if (!metrics_path.empty()) {
    std::ofstream f(metrics_path, std::ios::trunc);
    if (!f) {
      std::fprintf(stderr, "cannot open --metrics path %s\n",
                   metrics_path.c_str());
      return 1;
    }
    f << "{\n";
    for (std::size_t i = 0; i < metrics_json.size(); ++i)
      f << "\"" << run_names[i] << "\": " << metrics_json[i]
        << (i + 1 < metrics_json.size() ? ",\n" : "\n");
    f << "}\n";
    if (!f) {
      std::fprintf(stderr, "short write to %s\n", metrics_path.c_str());
      return 1;
    }
    std::printf("wrote metrics for %zu runs to %s\n", metrics_json.size(),
                metrics_path.c_str());
  }
  return 0;
}

/// Domain scenario 2 — scientific-data compression study: evaluate every
/// compressor in the library on several field types at several error
/// bounds, the workflow an HPC engineer follows when choosing a
/// checkpoint compressor for their application (paper §2, §5.1).
///
///   build/examples/compression_explorer

#include <cmath>
#include <cstdio>
#include <map>
#include <string>

#include "common/rng.hpp"
#include "compress/compressor.hpp"
#include "sparse/vector_ops.hpp"

namespace {

using lck::Vector;

std::map<std::string, Vector> make_fields(std::size_t n) {
  lck::Rng rng(31);
  std::map<std::string, Vector> fields;

  Vector smooth(n);
  for (std::size_t i = 0; i < n; ++i)
    smooth[i] = std::sin(6.28 * static_cast<double>(i) / static_cast<double>(n)) *
                    2.0 + 3.0;
  fields["smooth (PDE solution)"] = std::move(smooth);

  Vector noisy(n);
  for (std::size_t i = 0; i < n; ++i)
    noisy[i] = std::sin(0.01 * static_cast<double>(i)) +
               0.01 * rng.uniform(-1.0, 1.0);
  fields["smooth + 1% noise"] = std::move(noisy);

  Vector turbulent(n);
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    acc += rng.uniform(-1.0, 1.0) * 0.1;  // random walk: multiscale field
    turbulent[i] = acc;
  }
  fields["random walk (turbulence-like)"] = std::move(turbulent);

  Vector sparse_field(n, 0.0);
  for (std::size_t i = 0; i < n / 50; ++i)
    sparse_field[rng.uniform_index(n)] = rng.uniform(-5.0, 5.0);
  fields["sparse spikes"] = std::move(sparse_field);

  return fields;
}

}  // namespace

int main() {
  using namespace lck;
  constexpr std::size_t kN = 1u << 18;
  const auto fields = make_fields(kN);

  for (const auto& [field_name, data] : fields) {
    std::printf("\n=== %s (%zu doubles) ===\n", field_name.c_str(),
                data.size());
    std::printf("%-18s %-12s %-10s\n", "compressor", "eb", "ratio");
    for (const char* name : {"deflate", "shuffle-deflate", "shuffle-rle"}) {
      const auto comp = make_compressor(name);
      std::printf("%-18s %-12s %-10.2f\n", name, "lossless",
                  compression_ratio(*comp, data));
    }
    for (const char* name : {"sz", "zfp"}) {
      for (const double eb : {1e-2, 1e-4, 1e-6}) {
        const auto comp = make_compressor(name, ErrorBound::pointwise_rel(eb));
        std::printf("%-18s %-12.0e %-10.2f\n", name, eb,
                    compression_ratio(*comp, data));
      }
    }
    // The parallel block pipeline: same codecs, multi-threaded, per-block
    // CRC. The small ratio penalty is the per-block framing overhead.
    for (const char* name : {"block+sz", "block+deflate"}) {
      const auto comp = make_compressor(name, ErrorBound::pointwise_rel(1e-4));
      std::printf("%-18s %-12s %-10.2f\n", name,
                  comp->lossy() ? "1e-04" : "lossless",
                  compression_ratio(*comp, data));
    }
  }
  std::printf(
      "\nTakeaway (matches paper §2): lossless tops out near 2x on "
      "floating-point fields; error-bounded lossy compression reaches "
      "10-100x on smooth data, degrading gracefully with entropy.\n");
  return 0;
}

/// Quickstart: solve the paper's 3-D Poisson system (Eq. 15) with
/// preconditioned CG, protecting the solver state with lossy checkpointing
/// through the FTI-style Protect()/Snapshot() API (paper §4.2 workflow),
/// paced by a CheckpointPolicy instead of a hand-rolled modulo loop.
///
///   build/examples/quickstart
///
/// Walks through: (1) build the system, (2) register variables to
/// checkpoint, (3) iterate under a pacing policy, snapshotting when it says
/// so, (4) simulate a crash by clobbering the state, (5) recover from the
/// lossy checkpoint and finish the solve.
///
/// Everything below compiles against the single public facade header.

#include <cstdio>

#include "lck.hpp"

int main() {
  using namespace lck;

  // (1) The paper's evaluation operator: A x = b on a 24^3 grid (SPD form).
  const CsrMatrix a = poisson3d_spd(24);
  const Vector b = smooth_rhs(a);
  const auto precond = make_preconditioner("bjacobi", a, 8);
  CgSolver solver(a, b, precond.get(), {.rtol = 1e-8});
  std::printf("System: %lld unknowns, %lld nonzeros\n",
              static_cast<long long>(a.rows()),
              static_cast<long long>(a.nnz()));

  // (2) Lossy checkpointing: SZ with the paper's 1e-4 pointwise-relative
  // bound; only the approximate solution x is protected (Algorithm 2).
  const auto sz = make_compressor("sz", ErrorBound::pointwise_rel(1e-4));
  CheckpointManager ckpt(std::make_unique<MemoryStore>(), sz.get());
  Vector x_protected = solver.solution();
  ckpt.protect(0, "x", &x_protected);

  // (3) Pacing through the policy API: "fixed" reproduces the paper's
  // offline interval. At one virtual second per iteration this checkpoints
  // every 10 iterations; swap the name for "young" or "adaptive" (with a
  // PolicyContext carrying λ and modeled costs) to let the perf model pace
  // the run instead.
  PolicyContext pacing;
  pacing.fixed_interval_seconds = 10.0;
  const auto policy = make_policy("fixed", pacing);
  const double iteration_seconds = 1.0;
  double now = 0.0, last_ckpt = 0.0;

  index_t crash_at = 35;
  while (!solver.converged()) {
    solver.step();
    now += iteration_seconds;
    policy->on_iteration(now);
    if (policy->should_checkpoint(now, last_ckpt)) {
      x_protected = solver.solution();
      const auto rec = ckpt.snapshot();
      last_ckpt = now;
      policy->on_checkpoint_committed(/*blocking_seconds=*/0.0,
                                      static_cast<double>(rec.stored_bytes));
      std::printf("  checkpoint v%d at iteration %lld: %zu B raw -> %zu B "
                  "stored (%.1fx)\n",
                  rec.version, static_cast<long long>(solver.iteration()),
                  rec.raw_bytes, rec.stored_bytes,
                  static_cast<double>(rec.raw_bytes) /
                      static_cast<double>(rec.stored_bytes));
    }
    // (4) Simulated fail-stop failure.
    if (solver.iteration() == crash_at) {
      std::printf("  !! simulated failure at iteration %lld\n",
                  static_cast<long long>(crash_at));
      policy->on_failure(FailureSeverity::kProcess);
      ckpt.request_recovery();
      ckpt.snapshot();  // FTI semantics: pending recovery -> restore
      // (5) The decompressed x is the new initial guess (Algorithm 2).
      solver.restart(x_protected);
      policy->on_recovery(now);
      last_ckpt = now;  // checkpoint timer restarts after recovery
      std::printf("  recovered from lossy checkpoint; residual now %.3e\n",
                  solver.residual_norm());
      crash_at = -1;  // only crash once
    }
  }

  Vector r(b.size());
  a.residual(b, solver.solution(), r);
  std::printf("Converged at iteration %lld, true ||r||/||b|| = %.3e\n",
              static_cast<long long>(solver.iteration()),
              norm2(r) / norm2(b));
  return 0;
}

/// Quickstart: solve the paper's 3-D Poisson system (Eq. 15) with
/// preconditioned CG, protecting the solver state with lossy checkpointing
/// through the FTI-style Protect()/Snapshot() API (paper §4.2 workflow).
///
///   build/examples/quickstart
///
/// Walks through: (1) build the system, (2) register variables to
/// checkpoint, (3) iterate, snapshotting every k iterations, (4) simulate a
/// crash by clobbering the state, (5) recover from the lossy checkpoint and
/// finish the solve.

#include <cstdio>

#include "ckpt/checkpoint_manager.hpp"
#include "compress/sz/sz_like.hpp"
#include "solvers/cg.hpp"
#include "sparse/gen/poisson3d.hpp"

int main() {
  using namespace lck;

  // (1) The paper's evaluation operator: A x = b on a 24^3 grid (SPD form).
  const CsrMatrix a = poisson3d_spd(24);
  const Vector b = smooth_rhs(a);
  const auto precond = make_preconditioner("bjacobi", a, 8);
  CgSolver solver(a, b, precond.get(), {.rtol = 1e-8});
  std::printf("System: %lld unknowns, %lld nonzeros\n",
              static_cast<long long>(a.rows()),
              static_cast<long long>(a.nnz()));

  // (2) Lossy checkpointing: SZ with the paper's 1e-4 pointwise-relative
  // bound; only the approximate solution x is protected (Algorithm 2).
  SzLikeCompressor sz(ErrorBound::pointwise_rel(1e-4));
  CheckpointManager ckpt(std::make_unique<MemoryStore>(), &sz);
  Vector x_protected = solver.solution();
  ckpt.protect(0, "x", &x_protected);

  // (3) Iterate, checkpointing every 10 iterations.
  const index_t ckpt_interval = 10;
  index_t crash_at = 35;
  while (!solver.converged()) {
    solver.step();
    if (solver.iteration() % ckpt_interval == 0) {
      x_protected = solver.solution();
      const auto rec = ckpt.snapshot();
      std::printf("  checkpoint v%d at iteration %lld: %zu B raw -> %zu B "
                  "stored (%.1fx)\n",
                  rec.version, static_cast<long long>(solver.iteration()),
                  rec.raw_bytes, rec.stored_bytes,
                  static_cast<double>(rec.raw_bytes) /
                      static_cast<double>(rec.stored_bytes));
    }
    // (4) Simulated fail-stop failure.
    if (solver.iteration() == crash_at) {
      std::printf("  !! simulated failure at iteration %lld\n",
                  static_cast<long long>(crash_at));
      ckpt.request_recovery();
      ckpt.snapshot();  // FTI semantics: pending recovery -> restore
      // (5) The decompressed x is the new initial guess (Algorithm 2).
      solver.restart(x_protected);
      std::printf("  recovered from lossy checkpoint; residual now %.3e\n",
                  solver.residual_norm());
      crash_at = -1;  // only crash once
    }
  }

  Vector r(b.size());
  a.residual(b, solver.solution(), r);
  std::printf("Converged at iteration %lld, true ||r||/||b|| = %.3e\n",
              static_cast<long long>(solver.iteration()),
              norm2(r) / norm2(b));
  return 0;
}
